// Minimal JSON document model + strict recursive-descent parser.
//
// Shared by every in-tree reader of our own JSON artifacts: fuzz
// `.repro.json` files (src/fuzz/repro.cpp) and flight-recorder
// incident bundles (src/obs/report.cpp, `dopereport`). It parses the
// subset our writers emit — objects, arrays, strings, numbers,
// true/false/null; string escapes `\" \\ \/ \n \r \t` only, `\uXXXX`
// rejected — and keeps numeric tokens as raw text so 64-bit seeds are
// never squeezed through a double.
//
// Errors throw std::runtime_error with a "json: " prefix; callers that
// want their own prefix catch and re-throw.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dope::minijson {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  /// String payload, or the raw numeric token (so 64-bit integers are
  /// never squeezed through a double).
  std::string text;
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> fields;

  const Value* find(const std::string& key) const {
    for (const auto& [name, value] : fields) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

/// Parses one complete JSON document; trailing garbage is an error.
Value parse(std::string text);

// ---- typed field access ----
//
// `key` is only used in error messages, so array contexts can pass a
// descriptive pseudo-path like "weights[]".

const Value& require(const Value& obj, const std::string& key);
double as_double(const Value& value, const std::string& key);
std::int64_t as_i64(const Value& value, const std::string& key);
/// A u64 stored as a decimal string (see file comment on precision).
std::uint64_t as_u64_string(const Value& value, const std::string& key);
std::string as_string(const Value& value, const std::string& key);
bool as_bool(const Value& value, const std::string& key);

}  // namespace dope::minijson
