#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace dope {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  DOPE_REQUIRE(hi > lo, "histogram range must be non-empty");
  DOPE_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_center(std::size_t i) const {
  DOPE_REQUIRE(i < counts_.size(), "bin index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::percentile(double p) const {
  DOPE_REQUIRE(p >= 0.0 && p <= 100.0, "percentile rank out of range");
  if (count_ == 0) return lo_;
  const double target = p / 100.0 * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

double Histogram::cdf_at(double x) const {
  if (count_ == 0) return 0.0;
  if (x < lo_) return 0.0;
  if (x >= hi_)
    return static_cast<double>(count_ - overflow_ + overflow_) /
           static_cast<double>(count_);
  std::size_t cum = underflow_;
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  for (std::size_t i = 0; i <= idx && i < counts_.size(); ++i) {
    cum += counts_[i];
  }
  return static_cast<double>(cum) / static_cast<double>(count_);
}

void Histogram::merge(const Histogram& other) {
  DOPE_REQUIRE(other.lo_ == lo_ && other.hi_ == hi_ &&
                   other.counts_.size() == counts_.size(),
               "histogram layouts differ");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
}

}  // namespace dope
