#include "common/parallel.hpp"

#include <exception>
#include <stdexcept>

namespace dope {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    queue_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  // The analysis cannot see that a condition-variable predicate runs
  // with the waiter's lock re-acquired.
  idle_.wait(lock, [this]() NO_THREAD_SAFETY_ANALYSIS {
    return queue_.empty() && in_flight_ == 0;
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this]() NO_THREAD_SAFETY_ANALYSIS {
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  // The exception kept is the one from the lowest failing *index*, not
  // whichever thread lost the race to a mutex first — a failing batch
  // then names the same culprit for every thread count (including 1).
  std::exception_ptr first_error;
  std::size_t first_error_index = n;
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (i < first_error_index) {
            first_error_index = i;
            first_error = std::current_exception();
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dope
