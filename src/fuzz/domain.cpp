#include "fuzz/domain.hpp"

#include <algorithm>
#include <sstream>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "power/power_model.hpp"
#include "power/provisioning.hpp"

namespace dope::fuzz {

namespace {

using workload::Catalog;

/// Draws a whole-second duration in [lo, hi] (keeps repro files tidy).
Duration sample_seconds(Rng& rng, Duration lo, Duration hi) {
  const auto lo_s = static_cast<std::int64_t>(lo / kSecond);
  const auto hi_s = static_cast<std::int64_t>(hi / kSecond);
  return rng.uniform_int(lo_s, hi_s) * kSecond;
}

/// Random non-empty blend over `types` with uniform weights.
workload::Mixture sample_mixture(Rng& rng,
                                 std::vector<workload::RequestTypeId> pool) {
  // Keep a random subset (at least one entry), preserving pool order so
  // the draw sequence stays stable.
  std::vector<workload::RequestTypeId> kept;
  for (const auto type : pool) {
    if (rng.chance(0.6)) kept.push_back(type);
  }
  if (kept.empty()) {
    kept.push_back(pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))]);
  }
  std::vector<double> weights;
  weights.reserve(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    weights.push_back(rng.uniform(0.25, 2.0));
  }
  return workload::Mixture(std::move(kept), std::move(weights));
}

/// Time-ordered piecewise-constant rate plan inside (0, duration).
std::vector<workload::RateStep> sample_rate_plan(Rng& rng, Duration duration,
                                                 double max_rate,
                                                 std::size_t max_steps) {
  const std::size_t steps = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(max_steps)));
  std::vector<Time> at;
  at.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    at.push_back(sample_seconds(rng, kSecond, duration - kSecond));
  }
  std::sort(at.begin(), at.end());
  at.erase(std::unique(at.begin(), at.end()), at.end());
  std::vector<workload::RateStep> plan;
  plan.reserve(at.size());
  for (const Time t : at) {
    plan.push_back({t, rng.uniform(0.0, max_rate)});
  }
  return plan;
}

}  // namespace

std::string FuzzCase::label() const {
  std::ostringstream out;
  out << "case-0x" << std::hex << case_seed << std::dec << "/"
      << power::budget_name(config.budget) << "/"
      << scenario::scheme_name(scheme) << "/";
  if (config.attack_rps > 0.0) {
    out << "attack-" << static_cast<long long>(config.attack_rps);
  } else {
    out << "calm";
  }
  out << "/" << static_cast<long long>(to_seconds(config.duration)) << "s";
  if (config.num_zones > 1) {
    out << "/" << config.num_zones << "z-"
        << site::divider_name(config.site_divider);
  }
  return out.str();
}

scenario::ScenarioConfig materialize(const FuzzCase& fuzz_case,
                                     scenario::SchemeKind scheme) {
  scenario::ScenarioConfig config = fuzz_case.config;
  config.scheme = scheme;
  config.obs = nullptr;
  config.default_alert_rules = false;
  return config;
}

Watts expected_budget(const scenario::ScenarioConfig& config) {
  if (config.budget_override > Watts{0.0}) return config.budget_override;
  const Watts nameplate = power::ServerPowerSpec{}.nameplate *
                          static_cast<double>(config.num_servers);
  const Watts per_zone =
      power::PowerBudget::for_level(config.budget, nameplate).supply;
  // A multi-zone site's facility budget defaults to the sum of the
  // zones' level-derived budgets (identical zones here).
  return per_zone * static_cast<double>(config.num_zones);
}

ScenarioSampler::ScenarioSampler(Domain domain) : domain_(std::move(domain)) {
  DOPE_REQUIRE(!domain_.budgets.empty(), "fuzz domain needs budget levels");
  DOPE_REQUIRE(!domain_.schemes.empty(), "fuzz domain needs schemes");
  DOPE_REQUIRE(domain_.min_servers >= 1 &&
                   domain_.min_servers <= domain_.max_servers,
               "fuzz domain server bounds are inverted");
  DOPE_REQUIRE(domain_.min_duration >= 2 * kSecond &&
                   domain_.min_duration <= domain_.max_duration,
               "fuzz domain duration bounds are invalid");
}

std::uint64_t ScenarioSampler::derive_case_seed(std::uint64_t campaign_seed,
                                                std::uint64_t index) {
  // splitmix64 over (campaign, index): one well-mixed stream per
  // campaign, constant-time random access by case index.
  std::uint64_t state = campaign_seed ^ 0x9E3779B97F4A7C15ULL;
  std::uint64_t mixed = splitmix64(state);
  state = mixed ^ index;
  return splitmix64(state);
}

FuzzCase ScenarioSampler::sample(std::uint64_t case_seed) const {
  Rng rng(case_seed);
  FuzzCase fuzz_case;
  fuzz_case.case_seed = case_seed;
  scenario::ScenarioConfig& config = fuzz_case.config;
  config.scheme = scenario::SchemeKind::kNone;
  config.seed = case_seed;

  // --- scheme under test, topology, provisioning ---
  fuzz_case.scheme = domain_.schemes[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(domain_.schemes.size()) - 1))];
  config.num_servers = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(domain_.min_servers),
      static_cast<std::int64_t>(domain_.max_servers)));
  config.budget = domain_.budgets[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(domain_.budgets.size()) - 1))];
  config.duration =
      sample_seconds(rng, domain_.min_duration, domain_.max_duration);

  const Duration slots[] = {500 * kMillisecond, kSecond, 2 * kSecond};
  config.slot = slots[static_cast<std::size_t>(rng.uniform_int(0, 2))];

  // --- infrastructure ---
  config.battery_runtime =
      rng.chance(domain_.p_battery) ? rng.uniform_int(1, 3) * kMinute : 0;
  if (fuzz_case.scheme == scenario::SchemeKind::kShaving &&
      config.battery_runtime == 0) {
    // ShavingScheme requires a cluster battery by contract; keep the
    // case valid without disturbing the draw sequence.
    config.battery_runtime = kMinute;
  }
  if (rng.chance(domain_.p_firewall)) {
    net::FirewallConfig firewall;
    firewall.threshold_rps = rng.uniform(100.0, 300.0);
    firewall.check_interval = 5 * kSecond;
    config.firewall = firewall;
  }
  if (rng.chance(domain_.p_breaker)) {
    power::BreakerSpec breaker;
    breaker.rated = expected_budget(config) * rng.uniform(1.05, 1.45);
    config.breaker = breaker;
  }

  // --- normal traffic ---
  config.normal_rps =
      rng.uniform(domain_.min_normal_rps, domain_.max_normal_rps);
  config.normal_sources =
      static_cast<unsigned>(rng.uniform_int(64, 512));
  if (rng.chance(domain_.p_custom_normal_mixture)) {
    config.normal_mixture = sample_mixture(
        rng, {Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount,
              Catalog::kTextCont, Catalog::kDnsQuery});
  }
  if (rng.chance(domain_.p_normal_rate_plan)) {
    config.normal_rate_plan =
        sample_rate_plan(rng, config.duration, 1.5 * config.normal_rps,
                         domain_.max_rate_steps);
  }

  // --- attack traffic ---
  if (rng.chance(domain_.p_attack)) {
    config.attack_rps =
        rng.uniform(domain_.min_attack_rps, domain_.max_attack_rps);
    config.attack_agents = static_cast<unsigned>(rng.uniform_int(8, 128));
    config.attack_mixture = sample_mixture(
        rng,
        {Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount});
    config.attack_start =
        sample_seconds(rng, 0, config.duration / 3);
    if (rng.chance(0.3)) {
      config.attack_stop = std::min<Time>(
          config.duration,
          config.attack_start +
              sample_seconds(rng, config.duration / 4,
                             2 * config.duration / 3));
    }
    if (rng.chance(domain_.p_attack_rate_plan)) {
      config.attack_rate_plan =
          sample_rate_plan(rng, config.duration, domain_.max_attack_rps,
                           domain_.max_rate_steps);
    }
  }

  // --- mid-run chaos: single-node outages ---
  if (rng.chance(domain_.p_node_outage) && config.num_servers > 1) {
    const std::size_t count = std::min(
        {static_cast<std::size_t>(rng.uniform_int(
             1, static_cast<std::int64_t>(domain_.max_node_outages))),
         config.num_servers});
    std::vector<std::size_t> picked;
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t server = 0;
      do {
        server = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.num_servers) - 1));
      } while (std::find(picked.begin(), picked.end(), server) !=
               picked.end());
      picked.push_back(server);
      scenario::NodeOutage outage;
      outage.server = server;
      outage.at =
          sample_seconds(rng, config.duration / 10,
                         2 * config.duration / 3);
      outage.down = sample_seconds(rng, 3 * kSecond, 20 * kSecond);
      config.node_outages.push_back(outage);
    }
  }

  // --- multi-zone sites (sampled last: single-zone cases keep the
  // exact draw sequence — and therefore the exact case — they had
  // before sites existed) ---
  if (domain_.max_zones > 1 && rng.chance(domain_.p_site)) {
    config.num_zones = static_cast<std::size_t>(rng.uniform_int(
        2, static_cast<std::int64_t>(domain_.max_zones)));
    const site::GlobalLbPolicy policies[] = {
        site::GlobalLbPolicy::kWeighted, site::GlobalLbPolicy::kLeastLoaded,
        site::GlobalLbPolicy::kZoneAffinity};
    config.glb_policy =
        policies[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    const site::DividerKind dividers[] = {
        site::DividerKind::kStatic, site::DividerKind::kDemandProportional,
        site::DividerKind::kHeadroomAware};
    config.site_divider =
        dividers[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    if (rng.chance(0.5)) {
      config.zone_weights.reserve(config.num_zones);
      for (std::size_t z = 0; z < config.num_zones; ++z) {
        config.zone_weights.push_back(rng.uniform(0.5, 2.0));
      }
    }
    // Half of attacking site cases concentrate the flood on one zone —
    // the DOPE shape the dividers exist to contain.
    if (config.attack_rps > 0.0 && rng.chance(0.5)) {
      config.attack_zone = static_cast<int>(rng.uniform_int(
          0, static_cast<std::int64_t>(config.num_zones) - 1));
    }
  }

  return fuzz_case;
}

}  // namespace dope::fuzz
