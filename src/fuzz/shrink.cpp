#include "fuzz/shrink.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace dope::fuzz {

namespace {

/// Re-establishes cross-field validity after a reduction (events inside
/// the window, outages on existing servers). Every pass runs this, so
/// passes stay single-purpose.
void normalize(scenario::ScenarioConfig& config) {
  config.attack_start =
      std::clamp<Time>(config.attack_start, 0,
                       std::max<Time>(0, config.duration - kSecond));
  if (config.attack_stop >= 0) {
    config.attack_stop =
        std::min<Time>(config.attack_stop, config.duration);
  }
  auto trim_plan = [&](std::vector<workload::RateStep>& plan) {
    plan.erase(std::remove_if(plan.begin(), plan.end(),
                              [&](const workload::RateStep& step) {
                                return step.at >= config.duration;
                              }),
               plan.end());
  };
  trim_plan(config.normal_rate_plan);
  trim_plan(config.attack_rate_plan);
  config.node_outages.erase(
      std::remove_if(config.node_outages.begin(), config.node_outages.end(),
                     [&](const scenario::NodeOutage& outage) {
                       return outage.server >= config.num_servers ||
                              outage.at >= config.duration;
                     }),
      config.node_outages.end());
}

/// One semantic reduction. `apply` returns false when it cannot make
/// the config any simpler (pass exhausted for this case).
struct Pass {
  const char* name;
  bool (*apply)(scenario::ScenarioConfig&);
};

Duration halve_seconds(Duration d, Duration floor) {
  const std::int64_t seconds =
      std::max<std::int64_t>(static_cast<std::int64_t>(floor / kSecond),
                             static_cast<std::int64_t>(d / kSecond) / 2);
  return seconds * kSecond;
}

constexpr Pass kPasses[] = {
    {"halve-duration",
     [](scenario::ScenarioConfig& c) {
       const Duration next = halve_seconds(c.duration, 10 * kSecond);
       if (next >= c.duration) return false;
       c.duration = next;
       return true;
     }},
    {"drop-node-outages",
     [](scenario::ScenarioConfig& c) {
       if (c.node_outages.empty()) return false;
       c.node_outages.clear();
       return true;
     }},
    {"drop-rate-plans",
     [](scenario::ScenarioConfig& c) {
       if (c.normal_rate_plan.empty() && c.attack_rate_plan.empty()) {
         return false;
       }
       c.normal_rate_plan.clear();
       c.attack_rate_plan.clear();
       return true;
     }},
    {"drop-attack",
     [](scenario::ScenarioConfig& c) {
       if (c.attack_rps <= 0.0) return false;
       c.attack_rps = 0.0;
       c.attack_rate_plan.clear();
       c.attack_mixture.reset();
       c.attack_start = 0;
       c.attack_stop = -1;
       return true;
     }},
    {"drop-normal",
     [](scenario::ScenarioConfig& c) {
       if (c.normal_rps <= 0.0 && c.normal_rate_plan.empty()) return false;
       c.normal_rps = 0.0;
       c.normal_rate_plan.clear();
       return true;
     }},
    {"halve-servers",
     [](scenario::ScenarioConfig& c) {
       const std::size_t next = std::max<std::size_t>(2, c.num_servers / 2);
       if (next >= c.num_servers) return false;
       c.num_servers = next;
       return true;
     }},
    {"halve-attack-rate",
     [](scenario::ScenarioConfig& c) {
       if (c.attack_rps < 2.0) return false;
       c.attack_rps /= 2.0;
       return true;
     }},
    {"halve-normal-rate",
     [](scenario::ScenarioConfig& c) {
       if (c.normal_rps < 2.0) return false;
       c.normal_rps /= 2.0;
       return true;
     }},
    {"default-mixtures",
     [](scenario::ScenarioConfig& c) {
       if (!c.normal_mixture.has_value() && !c.attack_mixture.has_value()) {
         return false;
       }
       c.normal_mixture.reset();
       c.attack_mixture.reset();
       return true;
     }},
    {"drop-firewall",
     [](scenario::ScenarioConfig& c) {
       if (!c.firewall.has_value()) return false;
       c.firewall.reset();
       return true;
     }},
    {"drop-breaker",
     [](scenario::ScenarioConfig& c) {
       if (!c.breaker.has_value()) return false;
       c.breaker.reset();
       return true;
     }},
    {"drop-battery",
     [](scenario::ScenarioConfig& c) {
       if (c.battery_runtime <= 0) return false;
       c.battery_runtime = 0;
       return true;
     }},
    {"fewer-sources",
     [](scenario::ScenarioConfig& c) {
       bool changed = false;
       if (c.normal_sources > 16) {
         c.normal_sources = 16;
         changed = true;
       }
       if (c.attack_agents > 8) {
         c.attack_agents = 8;
         changed = true;
       }
       return changed;
     }},
};

/// Same-bug criterion: the candidate must re-trip at least one of the
/// check ids the original failure reported.
bool reproduces(const OracleReport& candidate,
                const std::vector<std::string>& original_checks) {
  for (const auto& check : original_checks) {
    if (candidate.has_check(check)) return true;
  }
  return false;
}

}  // namespace

ShrinkResult shrink(const FuzzCase& failing, const OracleReport& original,
                    const ShrinkOptions& options) {
  if (original.ok()) {
    throw std::invalid_argument(
        "fuzz::shrink needs a failing case (original report is ok)");
  }
  std::vector<std::string> original_checks;
  for (const auto& violation : original.violations) {
    original_checks.push_back(violation.check);
  }

  ShrinkResult result;
  result.minimized = failing;
  result.report = original;

  // Round-robin the passes to a fixpoint: a round that accepts nothing
  // (every pass either exhausted or rejected) terminates the search.
  bool progressed = true;
  while (progressed && result.attempts < options.max_attempts) {
    progressed = false;
    for (const Pass& pass : kPasses) {
      if (result.attempts >= options.max_attempts) break;
      // Greedily re-apply one pass while it keeps paying off (e.g.
      // halve the duration all the way down to its floor).
      while (result.attempts < options.max_attempts) {
        FuzzCase candidate = result.minimized;
        if (!pass.apply(candidate.config)) break;
        normalize(candidate.config);
        ++result.attempts;
        OracleReport report = run_oracle(candidate, options.oracle);
        result.total_runs += report.runs;
        if (!reproduces(report, original_checks)) break;
        result.minimized = std::move(candidate);
        result.report = std::move(report);
        ++result.steps;
        progressed = true;
      }
    }
  }
  return result;
}

}  // namespace dope::fuzz
