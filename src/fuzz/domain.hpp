// Randomized-but-valid scenario sampling for the fuzzer.
//
// The paper's threat model is adversarial *search*: a DOPE attacker
// sweeps the scenario space for the traffic shape that trips breakers
// under oversubscription, so hand-picked test grids systematically
// under-explore exactly the corners an attacker would find. `Domain`
// declares the searchable space — scheme × budget × traffic shape ×
// topology size × mid-run chaos — and `ScenarioSampler` maps a single
// `uint64_t` seed to one concrete, always-valid `FuzzCase` via the
// repo's deterministic RNG. A failing case therefore *is* its seed:
// `dopefuzz --case-seed N` rebuilds it bit-for-bit anywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace dope::fuzz {

/// Declarative scenario space the sampler draws from. Every knob bounds
/// or gates one `ScenarioConfig` dimension; defaults cover the paper's
/// evaluation envelope plus the chaos the paper never hand-tested.
struct Domain {
  // --- topology ---
  std::size_t min_servers = 2;
  std::size_t max_servers = 12;

  // --- power provisioning ---
  std::vector<power::BudgetLevel> budgets = {
      power::BudgetLevel::kNormal, power::BudgetLevel::kHigh,
      power::BudgetLevel::kMedium, power::BudgetLevel::kLow};

  /// Schemes under test (one per case). The differential oracle always
  /// adds the uncapped `kNone` reference run on top.
  std::vector<scenario::SchemeKind> schemes = {
      scenario::SchemeKind::kCapping, scenario::SchemeKind::kShaving,
      scenario::SchemeKind::kToken, scenario::SchemeKind::kAntiDope};

  // --- observation window (whole seconds) ---
  Duration min_duration = 20 * kSecond;
  Duration max_duration = 90 * kSecond;

  // --- normal traffic ---
  double min_normal_rps = 25.0;
  double max_normal_rps = 600.0;
  /// Chance of a random service blend instead of the AliOS normal mix.
  double p_custom_normal_mixture = 0.3;
  double p_normal_rate_plan = 0.25;

  // --- attack traffic ---
  double p_attack = 0.75;
  double min_attack_rps = 50.0;
  double max_attack_rps = 900.0;
  double p_attack_rate_plan = 0.35;
  std::size_t max_rate_steps = 3;

  // --- infrastructure toggles ---
  double p_battery = 0.7;
  double p_firewall = 0.25;
  double p_breaker = 0.2;

  // --- mid-run chaos ---
  double p_node_outage = 0.3;
  std::size_t max_node_outages = 2;

  // --- multi-zone sites (docs/SITE.md) ---
  /// Chance a case is a multi-zone `site::Site` instead of a single
  /// cluster; when it hits, the zone count is drawn from
  /// [2, max_zones] along with a GLB policy, a budget divider, random
  /// zone weights, and (half the time) a zone-concentrated attack.
  double p_site = 0.3;
  std::size_t max_zones = 3;
};

/// One sampled point of the domain. `config` carries the full scenario
/// with `scheme == kNone` (the oracle's uncapped reference); the scheme
/// under test is held separately so the same case materializes under
/// any scheme.
struct FuzzCase {
  std::uint64_t case_seed = 0;
  scenario::ScenarioConfig config;
  scenario::SchemeKind scheme = scenario::SchemeKind::kAntiDope;

  /// "case-0x1234/Low-PB/Anti-DOPE/attack-420/45s" — stable label for
  /// reports and failure messages.
  std::string label() const;
};

/// Concrete scenario for one scheme run of this case. Never carries an
/// obs hub — oracle runs execute concurrently across fuzz workers.
scenario::ScenarioConfig materialize(const FuzzCase& fuzz_case,
                                     scenario::SchemeKind scheme);

/// The facility budget the *case* implies (override, else level fraction
/// × aggregate nameplate), computed independently of the cluster so the
/// oracle does not trust the code under test for its expectation.
Watts expected_budget(const scenario::ScenarioConfig& config);

/// Deterministic seed → case mapping over one domain.
class ScenarioSampler {
 public:
  explicit ScenarioSampler(Domain domain = {});

  const Domain& domain() const { return domain_; }

  /// Draws the case for `case_seed`. Same seed, same case — always.
  FuzzCase sample(std::uint64_t case_seed) const;

  /// Case seed of campaign `campaign_seed`, case `index` (splitmix64
  /// stream, so neighbouring indices are statistically independent).
  static std::uint64_t derive_case_seed(std::uint64_t campaign_seed,
                                        std::uint64_t index);

 private:
  Domain domain_;
};

}  // namespace dope::fuzz
