// Repro files: a failing fuzz case as a self-contained JSON artifact.
//
// A fresh failure reproduces from its seed alone (`dopefuzz --case-seed
// N`), but a *shrunk* case has been edited away from what any seed
// samples, so the minimized config must travel as data. `write_repro`
// emits a small versioned JSON document (doubles printed with enough
// digits to round-trip binary64); `read_repro` parses it back with a
// tiny in-tree parser — no external JSON dependency, by constraint. The
// pair is exercised round-trip by the test suite and by `dopefuzz
// --repro FILE`, which re-judges the stored case and must re-observe
// the recorded violation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/oracle.hpp"

namespace dope::fuzz {

/// Everything a repro file stores: the (possibly shrunk) case plus the
/// oracle check ids it violated when it was written.
struct Repro {
  FuzzCase fuzz_case;
  std::vector<std::string> checks;
};

/// Writes `repro` as versioned JSON.
void write_repro(std::ostream& out, const Repro& repro);

/// Convenience: writes to `path`; throws std::runtime_error on I/O
/// failure.
void write_repro_file(const std::string& path, const Repro& repro);

/// Parses a repro document. Throws std::runtime_error with a pointed
/// message on malformed input or an unsupported version.
Repro read_repro(std::istream& in);

/// Convenience: reads `path`; throws std::runtime_error on I/O failure.
Repro read_repro_file(const std::string& path);

}  // namespace dope::fuzz
