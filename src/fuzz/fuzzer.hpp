// Fuzz campaign runner: N cases sharded on a thread pool.
//
// A campaign maps `(campaign_seed, index)` to one case seed per index
// (splitmix64 stream — see `ScenarioSampler::derive_case_seed`), judges
// every sampled case with the differential oracle, and greedily shrinks
// each failure to its minimal reproduction. Workers write into
// per-index slots, so the merged `CampaignResult` — and everything
// printed or serialised from it — is byte-identical for any thread
// count; only wall-clock telemetry varies between runs.
//
// Progress is observable through the same instruments the sweep runner
// uses:
//   fuzz.cases_total       counter — campaign size, set before sharding
//   fuzz.cases_completed   counter — incremented as cases finish
//   fuzz.cases_failed      counter — cases with oracle violations
//   fuzz.shrink_steps      counter — accepted shrink reductions
// plus an optional `obs::LiveTap` publishing a snapshot per finished
// case for a CLI progress drainer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/shrink.hpp"
#include "obs/hub.hpp"
#include "obs/live.hpp"

namespace dope::fuzz {

struct CampaignOptions {
  std::uint64_t campaign_seed = 1;
  std::size_t cases = 100;
  /// Worker threads; 0 selects the hardware concurrency.
  std::size_t threads = 0;
  Domain domain;
  OracleOptions oracle;
  /// Shrink failing cases before reporting them.
  bool shrink_failures = true;
  std::size_t shrink_max_attempts = 128;
  /// Optional progress hub (see file comment). Caller owns.
  obs::Hub* obs = nullptr;
  /// Optional live telemetry tap (lock-free reader side). Caller owns.
  obs::LiveTap* live = nullptr;
};

/// One judged case, failure or not.
struct CaseRecord {
  std::size_t index = 0;
  std::uint64_t case_seed = 0;
  std::string label;
  OracleReport report;
};

/// One failing case, with its minimized form when shrinking ran.
struct Failure {
  std::size_t index = 0;
  FuzzCase original;
  OracleReport report;
  FuzzCase minimized;            // == original when shrinking is off
  OracleReport minimized_report;  // ditto
  std::size_t shrink_steps = 0;
  std::size_t shrink_attempts = 0;
};

struct CampaignResult {
  std::uint64_t campaign_seed = 0;
  /// All judged cases, in case-index order.
  std::vector<CaseRecord> cases;
  /// Failing cases only, in case-index order.
  std::vector<Failure> failures;
  /// Scenario executions across the whole campaign (oracle + shrink).
  std::size_t total_runs = 0;

  bool ok() const { return failures.empty(); }
};

/// Runs one campaign. Deterministic up to thread count (see file
/// comment).
CampaignResult run_campaign(const CampaignOptions& options);

/// One line per failure: check ids, scheme, label, repro command.
void print_failures(std::ostream& out, const CampaignResult& result);

/// Machine-readable campaign summary (counts, per-failure checks and
/// seeds); small enough to paste into a bug report.
void write_campaign_json(std::ostream& out, const CampaignResult& result);

}  // namespace dope::fuzz
