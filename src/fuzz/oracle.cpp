#include "fuzz/oracle.hpp"

#include <cmath>
#include <exception>
#include <sstream>

#include "common/audit.hpp"
#include "power/power_model.hpp"

namespace dope::fuzz {

namespace {

/// a <= b with mixed absolute/relative slack at magnitude `scale`.
bool loosely_le(double a, double b, double scale) {
  return a <= b + 1e-6 + 1e-9 * std::abs(scale);
}

struct RunOutcome {
  scenario::ScenarioResult result;
  std::vector<audit::Violation> audit_violations;
  std::string error;  // non-empty when the run threw
  bool ok = false;
};

RunOutcome execute(const scenario::ScenarioConfig& config) {
  RunOutcome outcome;
  audit::ScopedCollector collector;
  try {
    outcome.result = scenario::run_scenario(config);
    outcome.ok = true;
  } catch (const std::exception& e) {
    outcome.error = e.what();
  } catch (...) {
    outcome.error = "unknown exception";
  }
  outcome.audit_violations = collector.violations();
  return outcome;
}

class Judge {
 public:
  Judge(const FuzzCase& fuzz_case, const OracleOptions& options,
        OracleReport& report)
      : fuzz_case_(fuzz_case), options_(options), report_(report) {}

  void flag(const std::string& check, const std::string& scheme,
            const std::string& detail) {
    report_.violations.push_back({check, scheme, detail});
  }

  /// Result-level invariants that must hold for every run of every
  /// scheme, plus whatever the runtime audit collector caught.
  void check_run(const RunOutcome& run,
                 const scenario::ScenarioConfig& config) {
    const std::string& scheme =
        run.ok ? run.result.scheme : scenario::scheme_name(config.scheme);
    for (const auto& violation : run.audit_violations) {
      flag("audit." + violation.check, scheme, violation.message);
    }
    if (!run.ok) {
      flag("exception", scheme, run.error);
      return;
    }
    const scenario::ScenarioResult& r = run.result;
    std::ostringstream detail;

    // Energy books must balance: load == utility + battery.
    const Joules load = r.energy.load_total();
    const double scale = std::max(1.0, load.value());
    if (abs(load - (r.energy.utility + r.energy.battery)) >
            Joules{1e-6 * scale} ||
        r.energy.utility < Joules{-1e-9} ||
        r.energy.battery < Joules{-1e-9} ||
        r.energy.recharge < Joules{-1e-9}) {
      detail << "load=" << load.value()
             << " J, utility=" << r.energy.utility.value()
             << " J, battery=" << r.energy.battery.value()
             << " J, recharge=" << r.energy.recharge.value() << " J";
      flag("energy_conservation", scheme, detail.str());
      return;
    }

    // Sampled power timeline must agree with the exact energy integral.
    const Watts from_energy = load / config.duration;
    if (abs(r.mean_power - from_energy) >
        0.12 * std::max(Watts{20.0}, from_energy)) {
      detail << "sampled mean " << r.mean_power.value()
             << " W vs integral " << from_energy.value() << " W";
      flag("power_integral", scheme, detail.str());
    }

    // Power stays inside [0, aggregate nameplate] (site-wide: every
    // zone's fleet counts).
    const Watts nameplate =
        power::ServerPowerSpec{}.nameplate *
        static_cast<double>(config.num_servers) *
        static_cast<double>(config.num_zones);
    if (r.peak_power > nameplate + Watts{1e-6}) {
      detail << "peak " << r.peak_power.value() << " W above nameplate "
             << nameplate.value() << " W";
      flag("nameplate_exceeded", scheme, detail.str());
    }
    for (const auto& sample : r.power_timeline) {
      if (sample.value < -1e-9 ||
          sample.value > nameplate.value() + 1e-6) {
        detail << "power sample " << sample.value << " W at t="
               << to_seconds(sample.t) << " s outside [0, "
               << nameplate.value() << "] W";
        flag("nameplate_exceeded", scheme, detail.str());
        break;
      }
    }

    // The cluster's reported budget must match the provisioning math —
    // computed here from the *case*, not from the code under test.
    const Watts budget = expected_budget(fuzz_case_.config);
    if (abs(r.budget - budget) > 1e-6 * std::max(Watts{1.0}, budget)) {
      detail << "cluster reports " << r.budget.value()
             << " W, provisioning math " << "says " << budget.value()
             << " W";
      flag("budget_mismatch", scheme, detail.str());
    }

    // Latency percentiles are ordered and non-negative.
    const double percentiles[] = {r.min_ms, r.p50_ms, r.p90_ms,
                                  r.p95_ms,  r.p99_ms, r.max_ms};
    bool ordered = r.min_ms >= -1e-9;
    for (std::size_t i = 1; i < 6; ++i) {
      ordered = ordered && percentiles[i] >= percentiles[i - 1] - 1e-9;
    }
    if (!ordered) {
      detail << "min/p50/p90/p95/p99/max = " << r.min_ms << "/" << r.p50_ms
             << "/" << r.p90_ms << "/" << r.p95_ms << "/" << r.p99_ms
             << "/" << r.max_ms;
      flag("latency_ordering", scheme, detail.str());
    }

    // Ratios live in [0, 1].
    if (r.availability < -1e-9 || r.availability > 1.0 + 1e-9 ||
        r.drop_fraction < -1e-9 || r.drop_fraction > 1.0 + 1e-9) {
      detail << "availability=" << r.availability
             << ", drop_fraction=" << r.drop_fraction;
      flag("ratio_range", scheme, detail.str());
    }

    // Battery: SoC within [0, 1], discharge non-negative, and no
    // battery activity at all when the case has no battery.
    for (const auto& sample : r.battery_soc_timeline) {
      if (sample.value < -1e-9 || sample.value > 1.0 + 1e-9) {
        detail << "SoC " << sample.value << " at t="
               << to_seconds(sample.t) << " s";
        flag("soc_range", scheme, detail.str());
        break;
      }
    }
    if (r.battery_discharged < Joules{-1e-9} ||
        (config.battery_runtime == 0 &&
         (r.battery_discharged > Joules{1e-9} ||
          r.energy.battery > Joules{1e-9}))) {
      detail << "discharged " << r.battery_discharged.value()
             << " J with battery_runtime="
             << to_seconds(config.battery_runtime) << " s";
      flag("battery_accounting", scheme, detail.str());
    }

    // Slot statistics are internally consistent. (No ordering between
    // utility and demand violations: battery recharge rides on the
    // utility feed, so a recharging slot can breach on the utility side
    // alone.)
    const auto& slots = r.slot_stats;
    if (slots.violation_slots > slots.slots ||
        slots.utility_violation_slots > slots.slots ||
        slots.worst_overshoot < Watts{-1e-9} || slots.downtime < 0 ||
        slots.downtime > config.duration) {
      detail << "slots=" << slots.slots
             << ", violations=" << slots.violation_slots
             << ", utility violations=" << slots.utility_violation_slots
             << ", overshoot=" << slots.worst_overshoot.value()
             << " W, downtime=" << to_seconds(slots.downtime) << " s";
      flag("slot_stats", scheme, detail.str());
    }

    // No attack traffic configured -> no attack outcomes recorded.
    // dope-lint: allow(float-eq) — configured literal, not a computed value
    if (config.attack_rps == 0.0 && r.attack_counts.terminal() != 0) {
      detail << r.attack_counts.terminal()
             << " attack outcomes in an attack-free case";
      flag("phantom_attack", scheme, detail.str());
    }

    // Multi-zone runs: the per-zone breakdown must be present, every
    // zone's slice sane, and the site-level books must equal the sum of
    // the zones' books (energy cannot appear or vanish between layers).
    if (config.num_zones > 1) {
      if (r.zones.size() != config.num_zones) {
        detail << r.zones.size() << " zone breakdowns for "
               << config.num_zones << " zones";
        flag("zone_breakdown", scheme, detail.str());
        return;
      }
      Joules zone_load{0.0};
      Watts zone_budgets{0.0};
      for (std::size_t z = 0; z < r.zones.size(); ++z) {
        const auto& zone = r.zones[z];
        zone_load += zone.load_energy;
        zone_budgets += zone.budget;
        if (zone.availability < -1e-9 ||
            zone.availability > 1.0 + 1e-9 ||
            zone.load_energy < Joules{-1e-9} ||
            zone.budget < site::kMinZoneBudget - Watts{1e-9} ||
            zone.violation_slots > r.slot_stats.slots) {
          detail << "zone " << z << ": availability="
                 << zone.availability << ", load="
                 << zone.load_energy.value() << " J, budget="
                 << zone.budget.value() << " W, violations="
                 << zone.violation_slots;
          flag("zone_range", scheme, detail.str());
          break;
        }
      }
      // Site-level energy conservation: zones sum to the site books.
      const double site_scale = std::max(1.0, load.value());
      if (abs(zone_load - load) > Joules{1e-6 * site_scale}) {
        detail << "zone load sum " << zone_load.value()
               << " J vs site load " << load.value() << " J";
        flag("site_energy_conservation", scheme, detail.str());
      }
      // The divider hands out the whole facility budget (floors may
      // push the sum slightly above it, never below).
      const Watts facility = expected_budget(config);
      if (zone_budgets < facility - Watts{1e-6} ||
          zone_budgets > facility +
                             site::kMinZoneBudget *
                                 static_cast<double>(config.num_zones)) {
        detail << "zone budget sum " << zone_budgets.value()
               << " W vs facility " << facility.value() << " W";
        flag("zone_budget_sum", scheme, detail.str());
      }
    }
  }

  /// Properties of the scheme run relative to the uncapped reference.
  void check_differential(const RunOutcome& reference,
                          const RunOutcome& scheme_run,
                          const scenario::ScenarioConfig& scheme_config) {
    if (!reference.ok || !scheme_run.ok) return;
    const auto& r = scheme_run.result;
    const std::string& scheme = r.scheme;
    const double seconds = to_seconds(scheme_config.duration);
    std::ostringstream detail;

    // Capped schemes must hold the utility feed inside the budget
    // envelope over the whole run (slack covers sub-slot transients).
    const bool budgeted =
        fuzz_case_.scheme == scenario::SchemeKind::kCapping ||
        fuzz_case_.scheme == scenario::SchemeKind::kToken ||
        fuzz_case_.scheme == scenario::SchemeKind::kAntiDope;
    if (budgeted) {
      const Joules envelope =
          expected_budget(fuzz_case_.config) * scheme_config.duration *
          (1.0 + options_.budget_envelope_slack);
      if (!loosely_le(r.energy.utility_total().value(),
                      envelope.value() + 1.0, envelope.value())) {
        detail << "utility energy " << r.energy.utility_total().value()
               << " J above envelope " << envelope.value() << " J ("
               << expected_budget(fuzz_case_.config).value()
               << " W budget over " << seconds << " s + "
               << options_.budget_envelope_slack * 100.0 << "% slack)";
        flag("budget_envelope", scheme, detail.str());
      }
    }

    // Schemes throttle and deny; they must not conjure energy. The
    // bound is a loose multiple (see OracleOptions) and only applies
    // without a breaker: a reference run that trips dark consumes
    // arbitrarily little.
    if (!scheme_config.breaker.has_value()) {
      const Joules limit =
          reference.result.energy.load_total() *
              options_.admitted_energy_multiple +
          Joules{1.0};
      if (!loosely_le(r.energy.load_total().value(), limit.value(),
                      limit.value())) {
        detail << "load energy " << r.energy.load_total().value()
               << " J vs uncapped reference "
               << reference.result.energy.load_total().value() << " J (x"
               << options_.admitted_energy_multiple << " allowed)";
        flag("admitted_energy", scheme, detail.str());
      }

      // Per-zone differential: the same bound zone by zone. A scheme
      // that respects the site total while conjuring energy inside one
      // zone (and hiding it in another) fails here, not above. Skipped
      // under the least-loaded GLB: its routing feeds back on service
      // latency, so a scheme legitimately shifts traffic between zones
      // relative to the uncapped reference.
      if (scheme_config.glb_policy != site::GlobalLbPolicy::kLeastLoaded &&
          r.zones.size() == reference.result.zones.size()) {
        for (std::size_t z = 0; z < r.zones.size(); ++z) {
          const Joules zone_limit =
              reference.result.zones[z].load_energy *
                  options_.admitted_energy_multiple +
              Joules{1.0};
          if (!loosely_le(r.zones[z].load_energy.value(),
                          zone_limit.value(), zone_limit.value())) {
            detail << "zone " << z << " load "
                   << r.zones[z].load_energy.value()
                   << " J vs uncapped reference "
                   << reference.result.zones[z].load_energy.value()
                   << " J (x" << options_.admitted_energy_multiple
                   << " allowed)";
            flag("zone_admitted_energy", scheme, detail.str());
            break;
          }
        }
      }
    }
  }

  /// Bit-exact repeatability of the scheme run.
  void check_determinism(const RunOutcome& first,
                         const RunOutcome& second) {
    if (!first.ok || !second.ok) {
      if (first.ok != second.ok || first.error != second.error) {
        flag("nondeterminism", scenario::scheme_name(fuzz_case_.scheme),
             "rerun did not reproduce the run outcome");
      }
      return;
    }
    const auto& a = first.result;
    const auto& b = second.result;
    std::ostringstream detail;
    // Exact equality is the contract here: a determinism oracle that
    // tolerates drift is no oracle at all.
    bool same = a.mean_ms == b.mean_ms && a.p99_ms == b.p99_ms;
    // dope-lint: allow(float-eq) — bit-exact determinism contract
    same = same && a.mean_power == b.mean_power;
    // dope-lint: allow(float-eq) — bit-exact determinism contract
    same = same && a.peak_power == b.peak_power;
    // dope-lint: allow(float-eq) — bit-exact determinism contract
    same = same && a.energy.utility == b.energy.utility;
    // dope-lint: allow(float-eq) — bit-exact determinism contract
    same = same && a.energy.battery == b.energy.battery;
    same = same && a.battery_discharged == b.battery_discharged;
    same = same && a.normal_counts.terminal() == b.normal_counts.terminal();
    same = same && a.attack_counts.terminal() == b.attack_counts.terminal();
    same = same &&
           a.slot_stats.violation_slots == b.slot_stats.violation_slots;
    same = same && a.slot_stats.outages == b.slot_stats.outages;
    same = same && a.zones.size() == b.zones.size();
    for (std::size_t z = 0; same && z < a.zones.size(); ++z) {
      // dope-lint: allow(float-eq) — bit-exact determinism contract
      same = same && a.zones[z].load_energy == b.zones[z].load_energy;
      // dope-lint: allow(float-eq) — bit-exact determinism contract
      same = same && a.zones[z].budget == b.zones[z].budget;
      same = same &&
             a.zones[z].violation_slots == b.zones[z].violation_slots;
    }
    if (!same) {
      detail << "rerun diverged: mean_ms " << a.mean_ms << " vs "
             << b.mean_ms << ", utility " << a.energy.utility.value()
             << " vs " << b.energy.utility.value() << ", terminal "
             << a.normal_counts.terminal() << " vs "
             << b.normal_counts.terminal();
      flag("nondeterminism", a.scheme, detail.str());
    }
  }

 private:
  const FuzzCase& fuzz_case_;
  const OracleOptions& options_;
  OracleReport& report_;
};

}  // namespace

bool OracleReport::has_check(const std::string& check) const {
  for (const auto& violation : violations) {
    if (violation.check == check) return true;
  }
  return false;
}

std::string OracleReport::summary() const {
  std::string out;
  for (const auto& violation : violations) {
    if (!out.empty()) out += "; ";
    out += violation.check + "[" + violation.scheme + "]";
  }
  return out;
}

OracleReport run_oracle(const FuzzCase& fuzz_case,
                        const OracleOptions& options) {
  OracleReport report;
  Judge judge(fuzz_case, options, report);

  // Reference: the uncapped cluster. Never mutated — it anchors the
  // differential checks.
  const auto reference_config =
      materialize(fuzz_case, scenario::SchemeKind::kNone);
  const RunOutcome reference = execute(reference_config);
  ++report.runs;
  judge.check_run(reference, reference_config);

  // Scheme under test (bug-injection hook applies here only).
  auto scheme_config = materialize(fuzz_case, fuzz_case.scheme);
  if (options.mutate) options.mutate(scheme_config);
  const RunOutcome scheme_run = execute(scheme_config);
  ++report.runs;
  judge.check_run(scheme_run, scheme_config);
  judge.check_differential(reference, scheme_run, scheme_config);

  if (options.check_determinism) {
    const RunOutcome rerun = execute(scheme_config);
    ++report.runs;
    judge.check_determinism(scheme_run, rerun);
  }
  return report;
}

}  // namespace dope::fuzz
