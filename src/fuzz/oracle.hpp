// Differential oracle for sampled scenarios.
//
// A fuzzer is only as strong as its notion of "wrong". Each sampled case
// is executed under at least two schemes — the uncapped `kNone` reference
// plus the case's scheme under test — and judged three ways:
//
//   1. Physics invariants: the runtime audit checks of
//      `common/audit.hpp`, captured per-run through an
//      `audit::ScopedCollector` (hard-fail mode), plus result-level
//      conservation/sanity laws (energy books balance, power within
//      [0, nameplate], percentiles ordered, SoC in range, slot stats
//      consistent).
//   2. Scheme-relative properties: capped schemes must hold the utility
//      feed inside the *independently computed* budget envelope
//      (`expected_budget`, never the cluster's own figure), no scheme
//      may consume wildly more energy than the uncapped reference, and
//      the cluster's reported budget must match the provisioning math.
//   3. Determinism: the scheme run repeated from scratch must reproduce
//      its headline metrics bit-for-bit — the same-process hidden-state
//      check, applied to every sampled corner of the domain.
//
// A violation names a stable check id, the offending scheme, and a
// human-readable detail line; the shrinker reproduces failures by check
// id. Oracles never mutate shared state, so cases can be judged on many
// threads at once.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fuzz/domain.hpp"

namespace dope::fuzz {

/// One oracle finding for one case.
struct OracleViolation {
  /// Stable check id ("budget_envelope", "energy_conservation",
  /// "audit.battery_soc", "nondeterminism", "exception", ...).
  std::string check;
  /// Scheme of the offending run ("None", "Capping", "Anti-DOPE", ...).
  std::string scheme;
  std::string detail;
};

struct OracleOptions {
  /// Re-run the scheme under test and demand bit-identical headline
  /// metrics (catches hidden global/static state).
  bool check_determinism = true;
  /// Relative slack on the utility-energy budget envelope (covers
  /// sub-slot reaction transients).
  double budget_envelope_slack = 0.10;
  /// A managed scheme may consume at most this multiple of the uncapped
  /// reference's load energy (DVFS throttling inflates per-request
  /// energy for frequency-insensitive types, so the bound is loose —
  /// it exists to catch double-counting, not to be tight).
  double admitted_energy_multiple = 1.6;
  /// Test-only bug-injection hook: mutates the materialized config of
  /// every *scheme-under-test* run (never the `kNone` reference) just
  /// before execution. This is how the test suite proves the oracle
  /// catches a deliberately relaxed cap.
  std::function<void(scenario::ScenarioConfig&)> mutate;
};

/// Everything the oracle concluded about one case.
struct OracleReport {
  std::vector<OracleViolation> violations;
  /// Scenario executions performed (reference + scheme + reruns).
  std::size_t runs = 0;

  bool ok() const { return violations.empty(); }
  bool has_check(const std::string& check) const;
  /// "budget_envelope[Capping]; nondeterminism[Token]" — for logs.
  std::string summary() const;
};

/// Judges one sampled case. Deterministic and thread-safe.
OracleReport run_oracle(const FuzzCase& fuzz_case,
                        const OracleOptions& options = {});

}  // namespace dope::fuzz
