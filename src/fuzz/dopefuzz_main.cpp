// dopefuzz — randomized scenario fuzzing with differential oracles.
//
// Samples N randomized-but-valid scenarios from the fuzz domain, judges
// each under a scheme + the uncapped reference with the physics /
// scheme-relative / determinism oracles, and greedily shrinks every
// failure to a minimal reproduction. Campaign output is byte-identical
// for any --threads value; every failure prints a ready-to-paste
// `dopefuzz --case-seed N` command and can be exported as a
// self-contained `.repro.json`.
//
//   $ ./dopefuzz --cases 200 --seed 1 --threads 8
//   $ ./dopefuzz --case-seed 0xdeadbeef --repro fail.repro.json
//   $ ./dopefuzz --replay fail.repro.json
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/domain.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/repro.hpp"
#include "obs/flight.hpp"
#include "obs/hub.hpp"
#include "obs/live.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace dope;

void print_help() {
  std::cout <<
      R"(dopefuzz — randomized scenario fuzzing with differential oracles

usage: dopefuzz [options]

campaign
  --cases N            sampled cases per campaign (default 100)
  --seed S             campaign seed; case i fuzzes seed
                       splitmix64(S, i) (default 1)
  --threads N          worker threads; 0 = hardware concurrency (default)
  --no-shrink          report failures without minimizing them
  --no-determinism     skip the per-case rerun determinism oracle
                       (halves the runs; weaker campaign)

single case
  --case-seed S        judge exactly one sampled case (accepts 0x hex);
                       this is the command every failure prints
  --replay FILE        re-judge a stored .repro.json case instead of
                       sampling; exit 0 only if its recorded violation
                       is still observed

output
  --repro FILE         write the first failure (minimized when shrinking
                       is on) as a self-contained .repro.json
  --json FILE          write a machine-readable campaign summary
  --live FILE          while the campaign runs, atomically refresh FILE
                       with a JSON progress snapshot (plus a .prom
                       sibling) and print progress lines to stderr
  --live-interval-ms N live refresh period (default 1000)
  --help               this text

exit status: 0 = no oracle violations, 1 = violations found,
2 = usage or I/O error. See docs/FUZZING.md.
)";
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "dopefuzz: " << message << " (see --help)\n";
  std::exit(2);
}

/// Re-runs a failing case once with a flight-recorder hub and writes
/// the incident bundle next to the repro (`<stem>.incident.json`), so
/// the post-mortem of the failure ships with the reproduction itself.
/// Best-effort: a case whose violation is a thrown exception still gets
/// its repro, just without a bundle.
void write_incident_file(const std::string& repro_path,
                         const fuzz::FuzzCase& fuzz_case) {
  std::string path = repro_path;
  const std::string suffix = ".repro.json";
  if (path.size() > suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
          0) {
    path.resize(path.size() - suffix.size());
  }
  path += ".incident.json";
  try {
    obs::HubConfig hub_config;
    hub_config.enable_spans = true;
    hub_config.enable_timeseries = true;
    hub_config.enable_flight = true;
    obs::Hub hub(hub_config);
    scenario::ScenarioConfig config =
        fuzz::materialize(fuzz_case, fuzz_case.scheme);
    config.obs = &hub;
    config.default_alert_rules = true;
    config.run_label = fuzz_case.label();
    scenario::run_scenario(config);
    std::ofstream out(path);
    if (!out) {
      std::cerr << "dopefuzz: cannot write " << path << "\n";
      return;
    }
    hub.flight()->write_json(out);
    std::cout << "wrote " << path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "dopefuzz: incident capture failed: " << e.what() << "\n";
  }
}

/// Judges one explicit case (from --case-seed or --replay), prints the
/// verdict, optionally shrinks + exports, and returns the exit code.
int run_single(const fuzz::FuzzCase& fuzz_case,
               const fuzz::CampaignOptions& options,
               const std::string& repro_path,
               const std::vector<std::string>& expected_checks) {
  std::cout << "case " << fuzz_case.label() << "\n";
  const fuzz::OracleReport report =
      fuzz::run_oracle(fuzz_case, options.oracle);
  if (report.ok()) {
    if (!expected_checks.empty()) {
      std::cout << "recorded violation did NOT reproduce (expected ";
      for (std::size_t i = 0; i < expected_checks.size(); ++i) {
        std::cout << (i > 0 ? ", " : "") << expected_checks[i];
      }
      std::cout << ")\n";
      return 1;
    }
    std::cout << "ok (" << report.runs << " scenario runs, no violations)\n";
    return 0;
  }
  std::cout << "VIOLATIONS: " << report.summary() << "\n";
  for (const auto& violation : report.violations) {
    std::cout << "  " << violation.check << "[" << violation.scheme
              << "]: " << violation.detail << "\n";
  }
  fuzz::FuzzCase minimized = fuzz_case;
  fuzz::OracleReport minimized_report = report;
  if (options.shrink_failures) {
    fuzz::ShrinkOptions shrink_options;
    shrink_options.max_attempts = options.shrink_max_attempts;
    shrink_options.oracle = options.oracle;
    const fuzz::ShrinkResult shrunk =
        fuzz::shrink(fuzz_case, report, shrink_options);
    minimized = shrunk.minimized;
    minimized_report = shrunk.report;
    std::cout << "shrunk to " << minimized.label() << " (" << shrunk.steps
              << " steps, " << shrunk.attempts << " attempts)\n";
  }
  std::cout << "repro: dopefuzz --case-seed " << fuzz_case.case_seed << "\n";
  if (!repro_path.empty()) {
    fuzz::Repro repro;
    repro.fuzz_case = minimized;
    for (const auto& violation : minimized_report.violations) {
      repro.checks.push_back(violation.check);
    }
    fuzz::write_repro_file(repro_path, repro);
    std::cout << "wrote " << repro_path << "\n";
    write_incident_file(repro_path, minimized);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::CampaignOptions options;
  std::string repro_path, json_path, replay_path, live_path;
  std::uint64_t case_seed = 0;
  bool have_case_seed = false;
  long live_interval_ms = 1000;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) fail("missing value for " + flag);
      return args[++i];
    };
    const auto number = [&](const std::string& value) {
      try {
        return std::stod(value);
      } catch (...) {
        fail("bad numeric value for " + flag + ": " + value);
      }
    };
    const auto seed_value = [&](const std::string& value) {
      try {
        return std::stoull(value, nullptr, 0);  // accepts 0x prefixes
      } catch (...) {
        fail("bad seed value for " + flag + ": " + value);
      }
    };
    if (flag == "--help" || flag == "-h") {
      print_help();
      return 0;
    } else if (flag == "--cases") {
      options.cases = static_cast<std::size_t>(number(next()));
    } else if (flag == "--seed") {
      options.campaign_seed = seed_value(next());
    } else if (flag == "--threads") {
      options.threads = static_cast<std::size_t>(number(next()));
    } else if (flag == "--no-shrink") {
      options.shrink_failures = false;
    } else if (flag == "--no-determinism") {
      options.oracle.check_determinism = false;
    } else if (flag == "--case-seed") {
      case_seed = seed_value(next());
      have_case_seed = true;
    } else if (flag == "--replay") {
      replay_path = next();
    } else if (flag == "--repro") {
      repro_path = next();
    } else if (flag == "--json") {
      json_path = next();
    } else if (flag == "--live") {
      live_path = next();
    } else if (flag == "--live-interval-ms") {
      live_interval_ms = static_cast<long>(number(next()));
      if (live_interval_ms <= 0) fail("--live-interval-ms must be positive");
    } else {
      fail("unknown flag: " + flag);
    }
  }
  if (have_case_seed && !replay_path.empty()) {
    fail("--case-seed and --replay are mutually exclusive");
  }

  try {
    // Single-case modes: judge one case on this thread, no campaign.
    if (have_case_seed) {
      const fuzz::ScenarioSampler sampler(options.domain);
      return run_single(sampler.sample(case_seed), options, repro_path, {});
    }
    if (!replay_path.empty()) {
      const fuzz::Repro repro = fuzz::read_repro_file(replay_path);
      return run_single(repro.fuzz_case, options, repro_path, repro.checks);
    }
  } catch (const std::exception& e) {
    fail(e.what());
  }

  obs::Hub hub;
  obs::LiveTap live;
  options.obs = &hub;
  options.live = live_path.empty() ? nullptr : &live;

  // Live drainer: a host-side thread that periodically snapshots the tap
  // and refreshes the progress artifacts while the campaign runs. Reads
  // are wait-free for the fuzz workers; the files are replaced via
  // rename so a concurrent `cat`/scrape never sees a partial write.
  std::thread drainer;
  std::atomic<bool> drain_stop{false};
  if (!live_path.empty()) {
    std::string prom_path = live_path;
    if (prom_path.size() > 5 &&
        prom_path.compare(prom_path.size() - 5, 5, ".json") == 0) {
      prom_path.resize(prom_path.size() - 5);
    }
    prom_path += ".prom";
    drainer = std::thread([&live, &drain_stop, live_path, prom_path,
                           live_interval_ms] {
      obs::LiveSnapshot snap;
      std::uint64_t last_seen = 0;
      const auto emit = [&] {
        if (!live.latest(snap) || snap.seq == last_seen) return;
        last_seen = snap.seq;
        obs::replace_live_json(live_path, snap);
        obs::replace_live_prometheus(prom_path, snap);
        std::cerr << "dopefuzz: " << snap.runs_completed << "/"
                  << snap.runs_total << " cases";
        if (snap.runs_failed > 0) {
          std::cerr << " (" << snap.runs_failed << " FAILED)";
        }
        if (snap.wall_ms_count > 0) {
          std::cerr << ", mean "
                    << snap.wall_ms_sum /
                           static_cast<double>(snap.wall_ms_count)
                    << " ms/case";
        }
        std::cerr << "\n";
      };
      long slept_ms = live_interval_ms;  // emit immediately on start
      while (!drain_stop.load(std::memory_order_acquire)) {
        if (slept_ms >= live_interval_ms) {
          slept_ms = 0;
          emit();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        slept_ms += 50;
      }
      emit();  // final state, including done=true
    });
  }

  fuzz::CampaignResult result;
  try {
    result = fuzz::run_campaign(options);
  } catch (const std::exception& e) {
    drain_stop.store(true, std::memory_order_release);
    if (drainer.joinable()) drainer.join();
    fail(e.what());
  }
  if (drainer.joinable()) {
    drain_stop.store(true, std::memory_order_release);
    drainer.join();
  }

  std::cout << "== dopefuzz: " << result.cases.size() << " cases, "
            << result.failures.size() << " failed, " << result.total_runs
            << " scenario runs (seed " << options.campaign_seed << ") ==\n";
  fuzz::print_failures(std::cout, result);

  if (!result.failures.empty() && !repro_path.empty()) {
    const fuzz::Failure& first = result.failures.front();
    fuzz::Repro repro;
    repro.fuzz_case = first.minimized;
    for (const auto& violation : first.minimized_report.violations) {
      repro.checks.push_back(violation.check);
    }
    fuzz::write_repro_file(repro_path, repro);
    std::cout << "wrote " << repro_path << "\n";
    write_incident_file(repro_path, first.minimized);
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) fail("cannot write " + json_path);
    fuzz::write_campaign_json(out, result);
    std::cout << "wrote " << json_path << "\n";
  }
  return result.ok() ? 0 : 1;
}
