#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>

#include "common/parallel.hpp"
#include "obs/json.hpp"

namespace dope::fuzz {

CampaignResult run_campaign(const CampaignOptions& options) {
  const ScenarioSampler sampler(options.domain);

  CampaignResult merged;
  merged.campaign_seed = options.campaign_seed;
  merged.cases.resize(options.cases);
  // Failure slots are pre-sized too so workers can write by index; the
  // empty ones are compacted after the join (still index order).
  std::vector<Failure> failure_slots(options.cases);
  // Not vector<bool>: workers flag distinct indices concurrently.
  std::vector<std::uint8_t> failed(options.cases, 0);

  // Progress instruments. The registry is not thread-safe, so create
  // them up front on this thread and serialise updates below.
  obs::Counter* completed = nullptr;
  obs::Counter* failed_counter = nullptr;
  obs::Counter* shrink_steps = nullptr;
  std::mutex obs_mutex;
  if (options.obs != nullptr) {
    auto& registry = options.obs->registry();
    registry.counter("fuzz.cases_total")
        .inc(static_cast<double>(options.cases));
    completed = &registry.counter("fuzz.cases_completed");
    failed_counter = &registry.counter("fuzz.cases_failed");
    shrink_steps = &registry.counter("fuzz.shrink_steps");
  }
  obs::LiveSnapshot tally;
  tally.runs_total = options.cases;
  if (options.live != nullptr) options.live->publish(tally);

  std::atomic<std::size_t> total_runs{0};

  ThreadPool pool(options.threads);
  for (std::size_t i = 0; i < options.cases; ++i) {
    pool.submit([&, i] {
      // dope-lint: allow(wall-clock) — host-side progress telemetry;
      // never reaches the merged campaign result.
      const auto start = std::chrono::steady_clock::now();
      CaseRecord& record = merged.cases[i];  // slot i: merge is by index
      record.index = i;
      record.case_seed =
          ScenarioSampler::derive_case_seed(options.campaign_seed, i);
      const FuzzCase fuzz_case = sampler.sample(record.case_seed);
      record.label = fuzz_case.label();
      record.report = run_oracle(fuzz_case, options.oracle);
      std::size_t case_runs = record.report.runs;
      std::size_t case_shrink_steps = 0;
      if (!record.report.ok()) {
        failed[i] = 1;
        Failure& failure = failure_slots[i];
        failure.index = i;
        failure.original = fuzz_case;
        failure.report = record.report;
        failure.minimized = fuzz_case;
        failure.minimized_report = record.report;
        if (options.shrink_failures) {
          ShrinkOptions shrink_options;
          shrink_options.max_attempts = options.shrink_max_attempts;
          shrink_options.oracle = options.oracle;
          ShrinkResult shrunk =
              shrink(fuzz_case, record.report, shrink_options);
          case_runs += shrunk.total_runs;
          case_shrink_steps = shrunk.steps;
          failure.minimized = std::move(shrunk.minimized);
          failure.minimized_report = std::move(shrunk.report);
          failure.shrink_steps = shrunk.steps;
          failure.shrink_attempts = shrunk.attempts;
        }
      }
      total_runs.fetch_add(case_runs, std::memory_order_relaxed);
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              // dope-lint: allow(wall-clock) — same telemetry read.
              std::chrono::steady_clock::now() - start)
              .count();
      if (options.obs != nullptr || options.live != nullptr) {
        std::lock_guard<std::mutex> lock(obs_mutex);
        if (options.obs != nullptr) {
          completed->inc();
          if (failed[i] != 0) failed_counter->inc();
          if (case_shrink_steps > 0) {
            shrink_steps->inc(static_cast<double>(case_shrink_steps));
          }
        }
        if (options.live != nullptr) {
          ++tally.runs_completed;
          if (failed[i] != 0) ++tally.runs_failed;
          tally.wall_ms_sum += elapsed_ms;
          tally.wall_ms_min = tally.wall_ms_count == 0
                                  ? elapsed_ms
                                  : std::min(tally.wall_ms_min, elapsed_ms);
          tally.wall_ms_max = std::max(tally.wall_ms_max, elapsed_ms);
          ++tally.wall_ms_count;
          options.live->publish(tally);
        }
      }
    });
  }
  pool.wait_idle();
  if (options.live != nullptr) {
    tally.done = true;
    options.live->publish(tally);
  }

  merged.total_runs = total_runs.load();
  for (std::size_t i = 0; i < options.cases; ++i) {
    if (failed[i] != 0) {
      merged.failures.push_back(std::move(failure_slots[i]));
    }
  }
  return merged;
}

void print_failures(std::ostream& out, const CampaignResult& result) {
  for (const auto& failure : result.failures) {
    out << "FAIL " << failure.original.label() << "\n";
    out << "  checks: " << failure.report.summary() << "\n";
    if (failure.shrink_steps > 0) {
      out << "  shrunk: " << failure.minimized.label() << " ("
          << failure.shrink_steps << " steps, " << failure.shrink_attempts
          << " attempts) -> " << failure.minimized_report.summary() << "\n";
    }
    out << "  repro:  dopefuzz --case-seed " << failure.original.case_seed
        << "\n";
  }
}

void write_campaign_json(std::ostream& out, const CampaignResult& result) {
  out << "{\n  \"campaign_seed\": \"" << result.campaign_seed << "\",\n";
  out << "  \"cases\": " << result.cases.size() << ",\n";
  out << "  \"failures\": " << result.failures.size() << ",\n";
  out << "  \"scenario_runs\": " << result.total_runs << ",\n";
  out << "  \"failing_cases\": [";
  for (std::size_t i = 0; i < result.failures.size(); ++i) {
    const auto& failure = result.failures[i];
    out << (i > 0 ? ",\n    " : "\n    ");
    out << "{\"case_seed\": \"" << failure.original.case_seed
        << "\", \"label\": ";
    obs::write_json_string(out, failure.original.label());
    out << ", \"checks\": [";
    for (std::size_t j = 0; j < failure.report.violations.size(); ++j) {
      if (j > 0) out << ", ";
      obs::write_json_string(out, failure.report.violations[j].check);
    }
    out << "], \"shrink_steps\": " << failure.shrink_steps << "}";
  }
  out << (result.failures.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
}

}  // namespace dope::fuzz
