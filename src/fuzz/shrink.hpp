// Seed-exact greedy shrinking of failing fuzz cases.
//
// A freshly sampled failure is rarely a good bug report: 90 seconds of
// five-way mixture traffic against twelve servers with two outages
// obscures whichever two knobs actually matter. The shrinker runs a
// fixed catalogue of semantic reduction passes — halve the duration,
// drop servers, zero the attack, strip chaos/rate plans/infrastructure,
// simplify mixtures — and keeps a candidate only when the oracle still
// reports one of the *original* check ids (same-bug criterion, so
// shrinking never walks to a different failure). Passes repeat to a
// fixpoint under a hard attempt budget; every accepted step makes the
// case strictly simpler, so termination is structural, not statistical.
//
// The result is deterministic: same failing case, same oracle options,
// same minimized case — shrink logs are therefore reproducible too.
#pragma once

#include <cstddef>

#include "fuzz/oracle.hpp"

namespace dope::fuzz {

struct ShrinkOptions {
  /// Hard cap on candidate oracle executions (each candidate costs at
  /// least two scenario runs).
  std::size_t max_attempts = 128;
  /// Oracle configuration, forwarded to every candidate re-judgement
  /// (including any test-only `mutate` bug injection — the shrunk case
  /// must fail for the same reason the original did).
  OracleOptions oracle;
};

struct ShrinkResult {
  /// The simplest case found that still violates one original check.
  FuzzCase minimized;
  /// Oracle report of `minimized` (never empty — shrinking starts from
  /// a failure and only accepts failing candidates).
  OracleReport report;
  /// Accepted reduction steps (0 when the case was already minimal).
  std::size_t steps = 0;
  /// Candidate oracle executions spent.
  std::size_t attempts = 0;
  /// Scenario runs spent across all candidates (for run accounting).
  std::size_t total_runs = 0;
};

/// Minimizes `failing`, whose `original` report must be non-ok.
/// Throws std::invalid_argument when `original.ok()`.
ShrinkResult shrink(const FuzzCase& failing, const OracleReport& original,
                    const ShrinkOptions& options = {});

}  // namespace dope::fuzz
