#include "fuzz/repro.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/minijson.hpp"
#include "obs/json.hpp"

namespace dope::fuzz {

namespace {

constexpr int kReproVersion = 1;

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("repro: " + message);
}

// ---- writing ----

/// Doubles with enough digits to round-trip binary64 exactly; shrunk
/// configs must re-run bit-for-bit, so "%.12g pretty" is not enough.
void write_number(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

void write_u64(std::ostream& out, std::uint64_t v) {
  // As a string: JSON readers that funnel numbers through a double
  // would corrupt seeds above 2^53.
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"%" PRIu64 "\"", v);
  out << buf;
}

void write_mixture(std::ostream& out,
                   const std::optional<workload::Mixture>& mixture) {
  if (!mixture.has_value()) {
    out << "null";
    return;
  }
  out << "{\"types\": [";
  const auto& types = mixture->types();
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (i > 0) out << ", ";
    out << types[i];
  }
  // Mixture exposes its normalised cumulative table; store the deltas so
  // the constructor rebuilds the same table on load.
  out << "], \"weights\": [";
  const auto& cumulative = mixture->weights();
  double prev = 0.0;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (i > 0) out << ", ";
    write_number(out, cumulative[i] - prev);
    prev = cumulative[i];
  }
  out << "]}";
}

void write_rate_plan(std::ostream& out,
                     const std::vector<workload::RateStep>& plan) {
  out << "[";
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"at_us\": " << plan[i].at << ", \"rate_rps\": ";
    write_number(out, plan[i].rate_rps);
    out << "}";
  }
  out << "]";
}

// ---- parsing ----
//
// The document model and parser live in common/minijson.hpp; repro
// keeps only its domain-level decoding on top of them.

using JsonValue = minijson::Value;
using minijson::as_double;
using minijson::as_i64;
using minijson::as_string;
using minijson::as_u64_string;
using minijson::require;

// ---- enum name maps (two-way, local so fuzz stays CLI-independent) ----

std::string budget_token(power::BudgetLevel level) {
  switch (level) {
    case power::BudgetLevel::kNormal: return "normal";
    case power::BudgetLevel::kHigh: return "high";
    case power::BudgetLevel::kMedium: return "medium";
    case power::BudgetLevel::kLow: return "low";
  }
  return "?";
}

power::BudgetLevel parse_budget_token(const std::string& token) {
  if (token == "normal") return power::BudgetLevel::kNormal;
  if (token == "high") return power::BudgetLevel::kHigh;
  if (token == "medium") return power::BudgetLevel::kMedium;
  if (token == "low") return power::BudgetLevel::kLow;
  fail("unknown budget level \"" + token + "\"");
}

site::GlobalLbPolicy parse_glb_token(const std::string& token) {
  for (const auto policy :
       {site::GlobalLbPolicy::kWeighted, site::GlobalLbPolicy::kLeastLoaded,
        site::GlobalLbPolicy::kZoneAffinity}) {
    if (site::glb_policy_name(policy) == token) return policy;
  }
  fail("unknown GLB policy \"" + token + "\"");
}

site::DividerKind parse_divider_token(const std::string& token) {
  for (const auto kind :
       {site::DividerKind::kStatic, site::DividerKind::kDemandProportional,
        site::DividerKind::kHeadroomAware}) {
    if (site::divider_name(kind) == token) return kind;
  }
  fail("unknown divider \"" + token + "\"");
}

scenario::SchemeKind parse_scheme_token(const std::string& token) {
  for (const auto kind :
       {scenario::SchemeKind::kNone, scenario::SchemeKind::kCapping,
        scenario::SchemeKind::kShaving, scenario::SchemeKind::kToken,
        scenario::SchemeKind::kAntiDope}) {
    if (scenario::scheme_name(kind) == token) return kind;
  }
  fail("unknown scheme \"" + token + "\"");
}

std::optional<workload::Mixture> parse_mixture(const JsonValue& value) {
  if (value.kind == JsonValue::Kind::kNull) return std::nullopt;
  const JsonValue& types_json = require(value, "types");
  const JsonValue& weights_json = require(value, "weights");
  if (types_json.items.size() != weights_json.items.size() ||
      types_json.items.empty()) {
    fail("mixture types/weights must be non-empty and equal-length");
  }
  std::vector<workload::RequestTypeId> types;
  std::vector<double> weights;
  types.reserve(types_json.items.size());
  weights.reserve(weights_json.items.size());
  for (const auto& item : types_json.items) {
    types.push_back(
        static_cast<workload::RequestTypeId>(as_i64(item, "types[]")));
  }
  for (const auto& item : weights_json.items) {
    weights.push_back(as_double(item, "weights[]"));
  }
  return workload::Mixture(std::move(types), std::move(weights));
}

std::vector<workload::RateStep> parse_rate_plan(const JsonValue& value) {
  std::vector<workload::RateStep> plan;
  plan.reserve(value.items.size());
  for (const auto& item : value.items) {
    workload::RateStep step;
    step.at = as_i64(require(item, "at_us"), "at_us");
    step.rate_rps = as_double(require(item, "rate_rps"), "rate_rps");
    plan.push_back(step);
  }
  return plan;
}

}  // namespace

void write_repro(std::ostream& out, const Repro& repro) {
  const scenario::ScenarioConfig& c = repro.fuzz_case.config;
  out << "{\n";
  out << "  \"dopefuzz_repro\": " << kReproVersion << ",\n";
  out << "  \"case_seed\": ";
  write_u64(out, repro.fuzz_case.case_seed);
  out << ",\n  \"scheme\": ";
  obs::write_json_string(out, scenario::scheme_name(repro.fuzz_case.scheme));
  out << ",\n  \"checks\": [";
  for (std::size_t i = 0; i < repro.checks.size(); ++i) {
    if (i > 0) out << ", ";
    obs::write_json_string(out, repro.checks[i]);
  }
  out << "],\n";
  out << "  \"config\": {\n";
  out << "    \"num_servers\": " << c.num_servers << ",\n";
  out << "    \"budget\": ";
  obs::write_json_string(out, budget_token(c.budget));
  out << ",\n    \"budget_override_w\": ";
  write_number(out, c.budget_override.value());
  out << ",\n    \"battery_runtime_us\": " << c.battery_runtime << ",\n";
  out << "    \"slot_us\": " << c.slot << ",\n";
  out << "    \"firewall\": ";
  if (c.firewall.has_value()) {
    out << "{\"threshold_rps\": ";
    write_number(out, c.firewall->threshold_rps);
    out << ", \"check_interval_us\": " << c.firewall->check_interval
        << ", \"required_strikes\": " << c.firewall->required_strikes
        << ", \"ban_duration_us\": " << c.firewall->ban_duration << "}";
  } else {
    out << "null";
  }
  out << ",\n    \"breaker\": ";
  if (c.breaker.has_value()) {
    out << "{\"rated_w\": ";
    write_number(out, c.breaker->rated.value());
    out << ", \"instant_trip_multiple\": ";
    write_number(out, c.breaker->instant_trip_multiple);
    out << ", \"thermal_capacity\": ";
    write_number(out, c.breaker->thermal_capacity);
    out << ", \"cooling_rate\": ";
    write_number(out, c.breaker->cooling_rate);
    out << "}";
  } else {
    out << "null";
  }
  out << ",\n    \"normal_rps\": ";
  write_number(out, c.normal_rps);
  out << ",\n    \"normal_sources\": " << c.normal_sources << ",\n";
  out << "    \"normal_mixture\": ";
  write_mixture(out, c.normal_mixture);
  out << ",\n    \"normal_rate_plan\": ";
  write_rate_plan(out, c.normal_rate_plan);
  out << ",\n    \"attack_rps\": ";
  write_number(out, c.attack_rps);
  out << ",\n    \"attack_agents\": " << c.attack_agents << ",\n";
  out << "    \"attack_mixture\": ";
  write_mixture(out, c.attack_mixture);
  out << ",\n    \"attack_start_us\": " << c.attack_start << ",\n";
  out << "    \"attack_stop_us\": " << c.attack_stop << ",\n";
  out << "    \"attack_rate_plan\": ";
  write_rate_plan(out, c.attack_rate_plan);
  out << ",\n    \"node_outages\": [";
  for (std::size_t i = 0; i < c.node_outages.size(); ++i) {
    if (i > 0) out << ", ";
    const auto& outage = c.node_outages[i];
    out << "{\"server\": " << outage.server << ", \"at_us\": " << outage.at
        << ", \"down_us\": " << outage.down << "}";
  }
  out << "],\n";
  out << "    \"site\": {\"num_zones\": " << c.num_zones << ", \"glb\": \""
      << site::glb_policy_name(c.glb_policy) << "\", \"divider\": \""
      << site::divider_name(c.site_divider)
      << "\", \"attack_zone\": " << c.attack_zone
      << ", \"reapportion_period_us\": " << c.reapportion_period
      << ", \"zone_weights\": [";
  for (std::size_t i = 0; i < c.zone_weights.size(); ++i) {
    if (i > 0) out << ", ";
    write_number(out, c.zone_weights[i]);
  }
  out << "]},\n";
  out << "    \"duration_us\": " << c.duration << ",\n";
  out << "    \"power_sample_interval_us\": " << c.power_sample_interval
      << ",\n";
  out << "    \"seed\": ";
  write_u64(out, c.seed);
  out << "\n  }\n}\n";
}

void write_repro_file(const std::string& path, const Repro& repro) {
  std::ofstream out(path);
  if (!out) fail("cannot open \"" + path + "\" for writing");
  write_repro(out, repro);
  out.flush();
  if (!out) fail("failed writing \"" + path + "\"");
}

Repro read_repro(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = minijson::parse(buffer.str());

  const std::int64_t version =
      as_i64(require(root, "dopefuzz_repro"), "dopefuzz_repro");
  if (version != kReproVersion) {
    fail("unsupported repro version " + std::to_string(version));
  }

  Repro repro;
  repro.fuzz_case.case_seed =
      as_u64_string(require(root, "case_seed"), "case_seed");
  repro.fuzz_case.scheme =
      parse_scheme_token(as_string(require(root, "scheme"), "scheme"));
  for (const auto& check : require(root, "checks").items) {
    repro.checks.push_back(as_string(check, "checks[]"));
  }

  const JsonValue& config = require(root, "config");
  scenario::ScenarioConfig& c = repro.fuzz_case.config;
  c.scheme = scenario::SchemeKind::kNone;  // FuzzCase invariant
  c.num_servers = static_cast<std::size_t>(
      as_i64(require(config, "num_servers"), "num_servers"));
  c.budget = parse_budget_token(
      as_string(require(config, "budget"), "budget"));
  c.budget_override = Watts{
      as_double(require(config, "budget_override_w"), "budget_override_w")};
  c.battery_runtime =
      as_i64(require(config, "battery_runtime_us"), "battery_runtime_us");
  c.slot = as_i64(require(config, "slot_us"), "slot_us");

  const JsonValue& firewall = require(config, "firewall");
  if (firewall.kind != JsonValue::Kind::kNull) {
    net::FirewallConfig fw;
    fw.threshold_rps =
        as_double(require(firewall, "threshold_rps"), "threshold_rps");
    fw.check_interval =
        as_i64(require(firewall, "check_interval_us"), "check_interval_us");
    fw.required_strikes = static_cast<unsigned>(
        as_i64(require(firewall, "required_strikes"), "required_strikes"));
    fw.ban_duration =
        as_i64(require(firewall, "ban_duration_us"), "ban_duration_us");
    c.firewall = fw;
  }
  const JsonValue& breaker = require(config, "breaker");
  if (breaker.kind != JsonValue::Kind::kNull) {
    power::BreakerSpec spec;
    spec.rated =
        Watts{as_double(require(breaker, "rated_w"), "rated_w")};
    spec.instant_trip_multiple = as_double(
        require(breaker, "instant_trip_multiple"), "instant_trip_multiple");
    spec.thermal_capacity = as_double(require(breaker, "thermal_capacity"),
                                      "thermal_capacity");
    spec.cooling_rate =
        as_double(require(breaker, "cooling_rate"), "cooling_rate");
    c.breaker = spec;
  }

  c.normal_rps = as_double(require(config, "normal_rps"), "normal_rps");
  c.normal_sources = static_cast<unsigned>(
      as_i64(require(config, "normal_sources"), "normal_sources"));
  c.normal_mixture = parse_mixture(require(config, "normal_mixture"));
  c.normal_rate_plan = parse_rate_plan(require(config, "normal_rate_plan"));
  c.attack_rps = as_double(require(config, "attack_rps"), "attack_rps");
  c.attack_agents = static_cast<unsigned>(
      as_i64(require(config, "attack_agents"), "attack_agents"));
  c.attack_mixture = parse_mixture(require(config, "attack_mixture"));
  c.attack_start =
      as_i64(require(config, "attack_start_us"), "attack_start_us");
  c.attack_stop = as_i64(require(config, "attack_stop_us"), "attack_stop_us");
  c.attack_rate_plan = parse_rate_plan(require(config, "attack_rate_plan"));
  for (const auto& item : require(config, "node_outages").items) {
    scenario::NodeOutage outage;
    outage.server = static_cast<std::size_t>(
        as_i64(require(item, "server"), "server"));
    outage.at = as_i64(require(item, "at_us"), "at_us");
    outage.down = as_i64(require(item, "down_us"), "down_us");
    c.node_outages.push_back(outage);
  }
  // Site block: absent in pre-site repro files, which are single-zone
  // by construction.
  if (const JsonValue* site = config.find("site");
      site != nullptr && site->kind != JsonValue::Kind::kNull) {
    c.num_zones = static_cast<std::size_t>(
        as_i64(require(*site, "num_zones"), "num_zones"));
    c.glb_policy =
        parse_glb_token(as_string(require(*site, "glb"), "glb"));
    c.site_divider =
        parse_divider_token(as_string(require(*site, "divider"), "divider"));
    c.attack_zone = static_cast<int>(
        as_i64(require(*site, "attack_zone"), "attack_zone"));
    c.reapportion_period = as_i64(
        require(*site, "reapportion_period_us"), "reapportion_period_us");
    for (const auto& item : require(*site, "zone_weights").items) {
      c.zone_weights.push_back(as_double(item, "zone_weights[]"));
    }
  }
  c.duration = as_i64(require(config, "duration_us"), "duration_us");
  c.power_sample_interval = as_i64(
      require(config, "power_sample_interval_us"), "power_sample_interval_us");
  c.seed = as_u64_string(require(config, "seed"), "seed");
  return repro;
}

Repro read_repro_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open \"" + path + "\"");
  return read_repro(in);
}

}  // namespace dope::fuzz
