// PDF — Power-Driven Forwarding (the NLB half of Anti-DOPE).
//
// Splits the backend fleet into a *suspect pool* and an *innocent pool*
// and routes by suspect-list classification of the request's URL class.
// High-power requests — attacker traffic, plus the minority of legitimate
// heavy requests — land on the suspect pool, so later differentiated
// throttling hits attackers while the innocent pool keeps running at full
// speed. Legitimate heavy requests pay a price only while an attack is
// actually being suppressed (paper Section 5.4's deliberate KISS
// trade-off).
#pragma once

#include <vector>

#include "antidope/suspect_list.hpp"
#include "net/backend.hpp"
#include "net/load_balancer.hpp"
#include "workload/request.hpp"

namespace dope::obs {
class SpanTracer;
}  // namespace dope::obs

namespace dope::sim {
class Engine;
}  // namespace dope::sim

namespace dope::antidope {

/// URL-classified two-pool router.
class PdfRouter {
 public:
  PdfRouter(SuspectList suspects, std::vector<net::Backend*> suspect_pool,
            std::vector<net::Backend*> innocent_pool,
            net::LbPolicy policy = net::LbPolicy::kLeastLoaded);

  /// Chooses a backend. Suspicious requests never spill into the innocent
  /// pool (isolation is the point); innocent requests may spill into the
  /// suspect pool only when the innocent pool is entirely unavailable.
  net::Backend* route(const workload::Request& request);

  const SuspectList& suspects() const { return suspects_; }

  /// Swaps in a new classification (online learning); pool membership is
  /// unchanged — only which URL classes route to the suspect pool.
  void update_suspects(SuspectList suspects);
  bool is_suspect(const workload::Request& request) const {
    return suspects_.suspicious(request.type);
  }

  std::uint64_t suspect_routed() const { return suspect_routed_; }
  std::uint64_t innocent_routed() const { return innocent_routed_; }

  /// Binds span emission on both pool balancers (labels "suspect" /
  /// "innocent"). Span-only: no metrics, so exports without spans are
  /// byte-identical with or without this call.
  void bind_spans(sim::Engine* engine, obs::SpanTracer* spans);

 private:
  SuspectList suspects_;
  net::LoadBalancer suspect_lb_;
  net::LoadBalancer innocent_lb_;
  std::uint64_t suspect_routed_ = 0;
  std::uint64_t innocent_routed_ = 0;
};

}  // namespace dope::antidope
