// Offline power profiling of request types.
//
// The paper's operators build the suspect list by characterising, offline,
// how much power each service URL draws per request. We reproduce that
// measurement campaign in-simulator: for every catalog type, drive a
// single isolated node with a steady stream of that type and attribute the
// measured energy above idle to the average number of in-flight requests.
// The result is a *measured* per-request power (within sampling noise of
// the model's ground truth), so the whole Anti-DOPE pipeline runs on
// observations rather than on privileged model internals.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "power/dvfs.hpp"
#include "power/power_model.hpp"
#include "server/node.hpp"
#include "workload/catalog.hpp"

namespace dope::antidope {

/// Measurement outcome for one request type.
struct TypeProfile {
  workload::RequestTypeId type = 0;
  /// Measured active power per in-flight request (watts).
  Watts per_request_power{0.0};
  /// Measured node power when saturated with this type (watts).
  Watts saturated_node_power{0.0};
  /// Mean unloaded service latency at f_max (milliseconds).
  double base_latency_ms = 0.0;
  /// Request rate (rps) at which a single node saturates.
  double saturation_rps = 0.0;
};

/// Profiling campaign parameters. Each type is measured twice: a
/// *probe* phase at a fraction of the node's saturation rate (so the
/// nameplate clamp never distorts the per-request attribution) and an
/// *overload* phase that records the saturated node power.
struct ProfilerConfig {
  /// How long to load each type in each phase (simulated time).
  Duration duration = 30 * kSecond;
  /// Probe rate as a fraction of the saturation rate (must stay well
  /// below 1 so concurrency rarely reaches the core count).
  double probe_factor = 0.4;
  /// Overload rate as a multiple of the saturation rate.
  double overload_factor = 1.5;
  std::uint64_t seed = 1234;
};

/// Profiles every type in `catalog` on a node with the given spec/ladder.
std::vector<TypeProfile> profile_catalog(const workload::Catalog& catalog,
                                         const power::ServerPowerSpec& spec,
                                         const power::DvfsLadder& ladder,
                                         const ProfilerConfig& config = {});

/// Extracts the per-request power column (indexed by type id).
std::vector<Watts> per_request_powers(
    const std::vector<TypeProfile>& profiles);

}  // namespace dope::antidope
