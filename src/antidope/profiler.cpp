#include "antidope/profiler.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/stats.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace dope::antidope {

namespace {

/// Integrates the active-request count over time to obtain the average
/// concurrency, sampled at every power-relevant transition.
struct ConcurrencyIntegral {
  double weighted_sum = 0.0;
  Time last = 0;
  unsigned last_count = 0;

  void update(Time now, unsigned count) {
    weighted_sum += static_cast<double>(last_count) *
                    static_cast<double>(now - last);
    last = now;
    last_count = count;
  }

  double mean(Time end) {
    update(end, last_count);
    return end == 0 ? 0.0 : weighted_sum / static_cast<double>(end);
  }
};

/// One measurement phase: load a fresh node with `type` at `rate_rps` for
/// `duration`; returns (mean node power, mean concurrency, mean latency).
struct PhaseResult {
  Watts mean_power{0.0};
  double mean_concurrency = 0.0;
  double mean_latency_ms = 0.0;
};

PhaseResult run_phase(const workload::Catalog& catalog,
                      const power::ServerPowerSpec& spec,
                      const power::DvfsLadder& ladder,
                      workload::RequestTypeId type, double rate_rps,
                      Duration duration, std::uint64_t seed) {
  sim::Engine engine;
  OnlineStats latency_ms;
  auto sink = [&latency_ms](const workload::RequestRecord& r) {
    if (r.outcome == workload::RequestOutcome::kCompleted) {
      latency_ms.add(to_millis(r.latency));
    }
  };
  server::ServerConfig server_config;
  server_config.queue_capacity = 256;
  server_config.queue_deadline = 0;  // no client impatience while profiling
  server::ServerNode node(engine, 0, catalog,
                          power::ServerPowerModel(spec, ladder),
                          server_config, sink);

  ConcurrencyIntegral concurrency;
  workload::GeneratorConfig gen_config;
  gen_config.name = "profiler";
  gen_config.mixture = workload::Mixture::single(type);
  gen_config.rate_rps = rate_rps;
  gen_config.seed = seed;
  workload::TrafficGenerator generator(
      engine, catalog, gen_config,
      [&node, &concurrency, &engine](workload::Request&& r) {
        node.submit(std::move(r));
        concurrency.update(engine.now(), node.active_count());
      });
  // Sample concurrency frequently enough to catch completions too.
  auto sampler = engine.every(millis(2.0), [&node, &concurrency, &engine] {
    concurrency.update(engine.now(), node.active_count());
  });

  engine.run_until(duration);
  generator.stop();
  sampler.stop();

  PhaseResult result;
  result.mean_power = node.energy() / duration;
  result.mean_concurrency = concurrency.mean(duration);
  result.mean_latency_ms = latency_ms.mean();
  return result;
}

}  // namespace

std::vector<TypeProfile> profile_catalog(const workload::Catalog& catalog,
                                         const power::ServerPowerSpec& spec,
                                         const power::DvfsLadder& ladder,
                                         const ProfilerConfig& config) {
  DOPE_REQUIRE(config.duration > 0, "profiling duration must be positive");
  DOPE_REQUIRE(config.probe_factor > 0 && config.probe_factor < 1,
               "probe factor must be in (0, 1)");
  DOPE_REQUIRE(config.overload_factor > 0, "overload factor must be positive");

  const Watts idle =
      power::ServerPowerModel(spec, ladder).idle_power(ladder.max_level());

  std::vector<TypeProfile> out;
  out.reserve(catalog.size());
  for (workload::RequestTypeId type = 0; type < catalog.size(); ++type) {
    const auto& profile = catalog.type(type);
    const double service_s = to_seconds(profile.base_service_time);
    const double saturation_rps =
        static_cast<double>(spec.cores) / service_s;

    // Phase 1 (probe): light load, attribution clean of the clamp.
    const PhaseResult probe =
        run_phase(catalog, spec, ladder, type,
                  saturation_rps * config.probe_factor, config.duration,
                  config.seed + 2 * type);
    // Phase 2 (overload): saturated node power.
    const PhaseResult overload =
        run_phase(catalog, spec, ladder, type,
                  saturation_rps * config.overload_factor, config.duration,
                  config.seed + 2 * type + 1);

    TypeProfile result;
    result.type = type;
    result.per_request_power =
        probe.mean_concurrency > 1e-9
            ? std::max(Watts{0.0}, (probe.mean_power - idle) /
                                       probe.mean_concurrency)
            : Watts{0.0};
    result.saturated_node_power = overload.mean_power;
    result.base_latency_ms = probe.mean_latency_ms;
    result.saturation_rps = saturation_rps;
    out.push_back(result);
  }
  return out;
}

std::vector<Watts> per_request_powers(
    const std::vector<TypeProfile>& profiles) {
  std::vector<Watts> out(profiles.size(), Watts{0.0});
  for (const auto& p : profiles) {
    DOPE_REQUIRE(p.type < out.size(), "profile type id out of range");
    out[p.type] = p.per_request_power;
  }
  return out;
}

}  // namespace dope::antidope
