// Online power classification of URL classes.
//
// The paper builds the suspect list from *offline* profiling; its
// discussion notes the design "can be easily extended to the other types
// of application-layer DoS attacks by simply changing the monitored
// statistical features". This module implements that extension: a
// classifier that learns per-URL power *at runtime* from node telemetry,
// so URL classes that were never profiled (new endpoints, novel attack
// vectors) are flagged as soon as they reveal themselves.
//
// Telemetry is deliberately limited to what a node-local agent really
// has: its measured electrical power, its idle-power estimate, and the
// URL classes currently in service (`ServerNode::visit_active`). Each
// observation attributes the node's above-idle power evenly across the
// in-flight requests and folds the per-type share into an exponential
// moving average. Suspicion flips with hysteresis so borderline types do
// not flap between pools.
#pragma once

#include <cstddef>
#include <vector>

#include "antidope/suspect_list.hpp"
#include "common/units.hpp"
#include "server/node.hpp"
#include "workload/catalog.hpp"

namespace dope::antidope {

/// Classifier tuning.
struct OnlineClassifierConfig {
  /// Per-request power at/above which a type becomes suspect.
  Watts suspect_threshold{10.0};
  /// Hysteresis: an already-suspect type stays suspect until its EWMA
  /// falls below threshold * (1 - hysteresis).
  double hysteresis = 0.2;
  /// EWMA smoothing factor per observation batch (0 < alpha <= 1).
  double alpha = 0.2;
  /// Observations required before a type's estimate is trusted.
  std::size_t min_observations = 10;
};

/// Learns per-URL-class power online and maintains a suspect list.
class OnlineClassifier {
 public:
  /// `types`: catalog size. `initial`: prior flags (e.g. from offline
  /// profiling); types keep their prior until enough evidence arrives.
  OnlineClassifier(std::size_t types, SuspectList initial,
                   OnlineClassifierConfig config = {});

  /// Convenience: start with every type innocent (nothing profiled).
  static OnlineClassifier untrained(std::size_t types,
                                    OnlineClassifierConfig config = {});

  /// Ingests one node's telemetry sample: measured power, the node's
  /// idle-power estimate at its current level, and its active set.
  void observe(const server::ServerNode& node);

  /// Folds a raw (type -> measured per-request watts) observation in;
  /// exposed for tests and alternative telemetry pipelines.
  void ingest(workload::RequestTypeId type, Watts per_request_power);

  /// Current belief.
  const SuspectList& suspects() const { return suspects_; }
  bool suspicious(workload::RequestTypeId type) const {
    return suspects_.suspicious(type);
  }

  /// Learned per-request power estimate (0 until observed).
  Watts estimate(workload::RequestTypeId type) const;
  std::size_t observations(workload::RequestTypeId type) const;

  /// Number of types whose suspicion flag changed so far.
  std::size_t reclassifications() const { return reclassifications_; }

 private:
  void reclassify(workload::RequestTypeId type);

  OnlineClassifierConfig config_;
  std::vector<Watts> ewma_;
  std::vector<std::size_t> count_;
  std::vector<bool> flags_;
  SuspectList suspects_;
  std::size_t reclassifications_ = 0;
};

}  // namespace dope::antidope
