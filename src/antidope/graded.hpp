// Graded (n-pool) Anti-DOPE.
//
// The binary suspect list lumps every heavy URL into one pool, so a
// flood on *one* heavy URL also swamps the legitimate users of every
// other heavy URL. The graded variant applies Section 5.3's n-level
// classification structurally: one server pool per power class, sized
// proportionally, throttled heaviest-class-first when the budget is
// violated. A Word-Count flood then shares a pool only with other
// middle-class URLs, leaving legitimate Colla-Filt (top class) traffic
// on its own hardware.
#pragma once

#include <memory>
#include <vector>

#include "antidope/power_classes.hpp"
#include "cluster/cluster.hpp"
#include "cluster/scheme.hpp"
#include "net/load_balancer.hpp"
#include "schemes/util.hpp"

namespace dope::antidope {

/// Graded Anti-DOPE tuning.
struct GradedConfig {
  /// Number of power classes / pools.
  std::size_t num_classes = 3;
  /// Fraction of servers given to each non-lightest class pool; the
  /// lightest class receives the remainder. Must leave room for it.
  double pool_fraction_per_class = 0.2;
  /// Hysteresis headroom for frequency restoration.
  double headroom_margin = 0.02;
  /// Use the cluster battery as the actuation-transient bridge.
  bool use_battery = true;
};

/// n-pool, graded-throttling Anti-DOPE.
class GradedAntiDopeScheme final : public cluster::PowerScheme {
 public:
  explicit GradedAntiDopeScheme(GradedConfig config = {});

  std::string name() const override { return "Graded-Anti-DOPE"; }
  void attach(cluster::Cluster& cluster) override;
  void detach() override;
  net::Backend* route(const workload::Request& request) override;
  void on_slot(Time now, Duration slot) override;

  const PowerClassifier& classifier() const { return *classifier_; }
  std::size_t pool_size(std::size_t c) const {
    return pools_[c].nodes.size();
  }
  power::DvfsLevel pool_level(std::size_t c) const {
    return pools_[c].target;
  }

 private:
  struct Pool {
    std::vector<server::ServerNode*> nodes;
    std::unique_ptr<net::LoadBalancer> balancer;
    power::DvfsLevel target = 0;
  };

  GradedConfig config_;
  std::unique_ptr<PowerClassifier> classifier_;
  /// pools_[c] serves power class c (0 = lightest).
  std::vector<Pool> pools_;
  Watts last_battery_power_{0.0};
};

}  // namespace dope::antidope
