#include "antidope/power_classes.hpp"

#include <algorithm>
#include <numeric>

#include "common/expect.hpp"
#include "power/power_model.hpp"

namespace dope::antidope {

PowerClassifier::PowerClassifier(std::vector<Watts> per_type_power,
                                 std::size_t num_classes)
    : per_type_power_(std::move(per_type_power)),
      num_classes_(num_classes) {
  DOPE_REQUIRE(!per_type_power_.empty(), "need at least one type");
  DOPE_REQUIRE(num_classes_ >= 1, "need at least one class");
  DOPE_REQUIRE(num_classes_ <= per_type_power_.size(),
               "more classes than types");
  for (const Watts p : per_type_power_) {
    DOPE_REQUIRE(p >= Watts{0.0}, "powers must be non-negative");
  }

  // Rank types by power, then cut the ranking into num_classes groups of
  // near-equal size (equal-frequency boundaries). Ties stay together.
  std::vector<std::size_t> order(per_type_power_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return per_type_power_[a] < per_type_power_[b];
                   });
  class_of_.assign(per_type_power_.size(), 0);
  const double per_class = static_cast<double>(order.size()) /
                           static_cast<double>(num_classes_);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    auto cls = static_cast<std::size_t>(
        static_cast<double>(rank) / per_class);
    cls = std::min(cls, num_classes_ - 1);
    // Keep equal powers in the same (lower) class.
    if (rank > 0 && per_type_power_[order[rank]] ==
                        per_type_power_[order[rank - 1]]) {
      cls = class_of_[order[rank - 1]];
    }
    class_of_[order[rank]] = cls;
  }
}

PowerClassifier PowerClassifier::from_catalog(
    const workload::Catalog& catalog, std::size_t num_classes) {
  std::vector<Watts> powers;
  powers.reserve(catalog.size());
  for (workload::RequestTypeId t = 0; t < catalog.size(); ++t) {
    powers.push_back(power::active_power(catalog.type(t).power, 1.0));
  }
  return PowerClassifier(std::move(powers), num_classes);
}

std::size_t PowerClassifier::class_of(workload::RequestTypeId type) const {
  DOPE_REQUIRE(type < class_of_.size(), "type id out of range");
  return class_of_[type];
}

Watts PowerClassifier::class_ceiling(std::size_t c) const {
  DOPE_REQUIRE(c < num_classes_, "class index out of range");
  Watts ceiling{0.0};
  for (std::size_t t = 0; t < class_of_.size(); ++t) {
    if (class_of_[t] == c) ceiling = std::max(ceiling, per_type_power_[t]);
  }
  return ceiling;
}

std::vector<workload::RequestTypeId> PowerClassifier::members(
    std::size_t c) const {
  DOPE_REQUIRE(c < num_classes_, "class index out of range");
  std::vector<workload::RequestTypeId> out;
  for (std::size_t t = 0; t < class_of_.size(); ++t) {
    if (class_of_[t] == c) {
      out.push_back(static_cast<workload::RequestTypeId>(t));
    }
  }
  return out;
}

std::vector<std::size_t> PowerClassifier::decompose(
    const std::vector<workload::RequestTypeId>& stream) const {
  std::vector<std::size_t> q(num_classes_, 0);
  for (const auto type : stream) {
    ++q[class_of(type)];
  }
  return q;
}

bool PowerClassifier::fits_budget(const std::vector<std::size_t>& q,
                                  double rel, Watts budget,
                                  const workload::Catalog& catalog) const {
  DOPE_REQUIRE(q.size() == num_classes_, "count vector size mismatch");
  Watts total{0.0};
  for (std::size_t c = 0; c < num_classes_; ++c) {
    if (q[c] == 0) continue;
    // Conservative class power: the heaviest member evaluated at `rel`
    // with that member's own frequency sensitivity.
    Watts worst{0.0};
    for (const auto type : members(c)) {
      worst = std::max(
          worst, power::active_power(catalog.type(type).power, rel));
    }
    total += static_cast<double>(q[c]) * worst;
  }
  return total <= budget;
}

}  // namespace dope::antidope
