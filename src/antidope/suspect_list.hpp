// Suspect list: the offline-profiled mapping from URL class to power risk.
//
// Anti-DOPE's key observation (paper Section 5.2): requests for the same
// service/URL consume near-identical power, and *high-power-per-request*
// URLs are overwhelmingly the ones a DOPE attacker floods. The NLB can
// therefore classify requests by URL alone — no per-user state, no
// anomaly detection — and forward risky ones to an isolated pool.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "workload/catalog.hpp"
#include "workload/request.hpp"

namespace dope::antidope {

/// Immutable per-type suspicion flags.
class SuspectList {
 public:
  /// Flags indexed by RequestTypeId; must cover the whole catalog.
  explicit SuspectList(std::vector<bool> suspicious);

  /// Builds the list analytically from catalog power profiles: a type is
  /// suspect when its per-request power at f_max reaches `threshold`.
  static SuspectList from_catalog(const workload::Catalog& catalog,
                                  Watts threshold);

  /// Builds the list from measured per-request powers (one entry per
  /// catalog type, watts), e.g. from `profiler::profile_catalog`.
  static SuspectList from_measurements(const std::vector<Watts>& measured,
                                       Watts threshold);

  bool suspicious(workload::RequestTypeId type) const;
  std::size_t size() const { return suspicious_.size(); }
  std::size_t suspect_count() const;

 private:
  std::vector<bool> suspicious_;
};

}  // namespace dope::antidope
