// DPM throttling-configuration solver (paper Algorithm 1, Eq. 1).
//
// Algorithm 1 searches a *throttling list* TL(p, q) — a per-node choice
// of V/F operating points — such that the summed request power fits the
// available budget: Σ qᵢ·Pᵢ(f) ≤ B₀. A single uniform level is the
// simplest member of that family; this solver finds a heterogeneous
// assignment that reclaims the required watts while giving up as little
// total frequency (performance) as possible.
//
// Strategy: start every node at its ceiling and greedily take the
// single-step reduction with the best power-saved-per-hertz-lost ratio
// until the estimate fits (or every node reaches the ladder floor). With
// monotone per-node power curves this greedy is within one step of
// optimal for this class of separable knapsack problems — and, unlike an
// exact DP, runs comfortably inside a 1-second management slot.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "power/dvfs.hpp"
#include "server/node.hpp"

namespace dope::antidope {

/// Per-node level assignment (indexed like the input node vector).
using ThrottleAssignment = std::vector<power::DvfsLevel>;

/// Telemetry from one Algorithm-1 search (observability: how hard the
/// greedy worked and what it settled on).
struct SolveStats {
  /// Greedy step-downs taken (inner-loop iterations).
  std::uint64_t iterations = 0;
  /// Nodes whose final level is below the ceiling.
  std::size_t throttled_nodes = 0;
  /// Estimated total power of the returned assignment.
  Watts final_power{0.0};
};

/// Computes a heterogeneous throttling assignment whose estimated total
/// power fits `allowance`. Nodes start from `ceiling` (their current
/// target). Returns ladder-floor levels where even full throttling
/// cannot fit. Estimates use each node's *current* active set. `stats`,
/// when non-null, receives search telemetry.
ThrottleAssignment solve_throttling(
    const std::vector<server::ServerNode*>& nodes,
    const power::DvfsLadder& ladder, Watts allowance,
    power::DvfsLevel ceiling, SolveStats* stats = nullptr);

/// Estimated total power of an assignment.
Watts assignment_power(const std::vector<server::ServerNode*>& nodes,
                       const ThrottleAssignment& assignment);

/// Sum of assigned frequencies (the performance objective).
GHz assignment_frequency(const power::DvfsLadder& ladder,
                         const ThrottleAssignment& assignment);

/// Applies the assignment through each node's DVFS request interface.
void apply_assignment(const std::vector<server::ServerNode*>& nodes,
                      const ThrottleAssignment& assignment);

}  // namespace dope::antidope
