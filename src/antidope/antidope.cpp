#include "antidope/antidope.hpp"

#include <algorithm>
#include <utility>

#include "antidope/dpm.hpp"

#include "common/audit.hpp"
#include "common/expect.hpp"
#include "obs/hub.hpp"
#include "schemes/util.hpp"

namespace dope::antidope {

AntiDopeScheme::AntiDopeScheme(AntiDopeConfig config)
    : config_(std::move(config)) {
  DOPE_REQUIRE(config_.suspect_power_threshold > Watts{0.0},
               "suspect threshold must be positive");
  DOPE_REQUIRE(config_.suspect_pool_fraction > 0.0 &&
                   config_.suspect_pool_fraction < 1.0,
               "suspect pool fraction must be in (0, 1)");
  DOPE_REQUIRE(
      config_.headroom_margin >= 0.0 && config_.headroom_margin < 1.0,
      "headroom margin must be in [0, 1)");
}

void AntiDopeScheme::attach(cluster::Cluster& cluster) {
  ControlStage::attach(cluster);
  auto nodes = cluster.data().servers();
  DOPE_REQUIRE(nodes.size() >= 2,
               "Anti-DOPE needs at least two servers to form pools");

  // Partition the fleet: the first k nodes become the suspect pool.
  const auto k = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          static_cast<double>(nodes.size()) * config_.suspect_pool_fraction +
          0.5),
      1, nodes.size() - 1);
  suspect_nodes_.assign(nodes.begin(), nodes.begin() + static_cast<long>(k));
  innocent_nodes_.assign(nodes.begin() + static_cast<long>(k), nodes.end());

  SuspectList suspects =
      config_.suspect_list.has_value()
          ? *config_.suspect_list
          : SuspectList::from_catalog(cluster.catalog(),
                                      config_.suspect_power_threshold);

  std::vector<net::Backend*> suspect_pool(suspect_nodes_.begin(),
                                          suspect_nodes_.end());
  std::vector<net::Backend*> innocent_pool(innocent_nodes_.begin(),
                                           innocent_nodes_.end());
  if (config_.online_learning) {
    classifier_ = std::make_unique<OnlineClassifier>(
        cluster.catalog().size(), suspects, config_.online);
  }
  router_ = std::make_unique<PdfRouter>(std::move(suspects),
                                        std::move(suspect_pool),
                                        std::move(innocent_pool),
                                        config_.pool_policy);

  suspect_target_ = cluster.ladder().max_level();
  innocent_target_ = cluster.ladder().max_level();

  hub_ = cluster.engine().obs();
  if (hub_ != nullptr) {
    auto& reg = hub_->registry();
    obs_tl_iterations_ = &reg.counter("dpm.tl_iterations");
    obs_throttle_slots_ = &reg.counter("dpm.throttle_slots");
    router_->bind_spans(&cluster.engine(), hub_->spans());
  }
}

void AntiDopeScheme::detach() {
  // Every pointer below reaches into the old cluster's fleet or hub;
  // dropping them here is what makes re-attaching to a second cluster
  // safe (the pools and router are rebuilt in attach).
  router_.reset();
  classifier_.reset();
  suspect_nodes_.clear();
  innocent_nodes_.clear();
  hub_ = nullptr;
  obs_tl_iterations_ = nullptr;
  obs_throttle_slots_ = nullptr;
  ControlStage::detach();
}

void AntiDopeScheme::trace_throttle(Time now, Watts deficit,
                                    const char* mode,
                                    const SolveStats* stats) const {
  if (hub_ == nullptr) return;
  obs::TraceEvent e;
  e.t = now;
  e.type = obs::EventType::kThrottleApplied;
  e.source = "antidope";
  e.num.emplace_back("deficit_w", deficit.value());
  e.num.emplace_back("suspect_level", suspect_target_);
  e.num.emplace_back("innocent_level", innocent_target_);
  e.num.emplace_back("battery_w", last_battery_power_.value());
  if (stats != nullptr) {
    e.num.emplace_back("tl_iterations",
                       static_cast<double>(stats->iterations));
    e.num.emplace_back("throttled_nodes",
                       static_cast<double>(stats->throttled_nodes));
    e.num.emplace_back("final_power_w", stats->final_power.value());
  }
  e.str.emplace_back("mode", mode);
  hub_->event(std::move(e));
}

net::Backend* AntiDopeScheme::route(const workload::Request& request) {
  DOPE_ASSERT(router_ != nullptr);
  return router_->route(request);
}

void AntiDopeScheme::on_slot(Time now, Duration slot) {
  if (classifier_) {
    // Fold this slot's node telemetry into the online belief and keep the
    // router's classification current.
    for (auto* node : cluster_->data().servers()) classifier_->observe(*node);
    router_->update_suspects(classifier_->suspects());
  }
  const Watts budget = cluster_->power().budget();
  const Watts demand = cluster_->data().total_power();
  const auto& ladder = cluster_->ladder();
  battery::Battery* battery =
      config_.use_battery ? cluster_->power().battery() : nullptr;

  last_battery_power_ = Watts{0.0};
  const Watts deficit = demand - budget;

  if (deficit > Watts{0.0}) {
    // --- Algorithm 1: differentiated power management ---
    // Step 1: decide the throttling configuration. Reclaim power from the
    // suspect pool first: find the highest suspect level that fits under
    // what remains of the budget after the innocent pool's draw.
    const Watts innocent_now = schemes::estimate_power_at_uniform(
        innocent_nodes_, innocent_target_);
    const Watts suspect_allowance =
        std::max(Watts{0.0}, budget - innocent_now);
    if (config_.per_node_throttling) {
      // Heterogeneous TL(p,q): each suspect node gets its own level.
      SolveStats stats;
      const auto assignment =
          solve_throttling(suspect_nodes_, ladder, suspect_allowance,
                           suspect_target_, &stats);
      apply_assignment(suspect_nodes_, assignment);
      if constexpr (audit::kEnabled) {
        const bool all_at_floor = std::all_of(
            assignment.begin(), assignment.end(),
            [&](power::DvfsLevel l) { return l == ladder.min_level(); });
        audit::check_budget_feasible(hub_, now, stats.final_power,
                                     suspect_allowance, all_at_floor);
      }
      suspect_target_ = *std::min_element(assignment.begin(),
                                          assignment.end());
      if (battery != nullptr) {
        last_battery_power_ = battery->discharge(deficit, slot);
      }
      if (hub_ != nullptr) {
        obs_tl_iterations_->inc(static_cast<double>(stats.iterations));
        obs_throttle_slots_->inc();
        trace_throttle(now, deficit, "tl", &stats);
      }
      return;
    }
    power::DvfsLevel new_suspect = schemes::find_uniform_level(
        suspect_nodes_, ladder, suspect_allowance, suspect_target_);

    // Step 2 (last resort): if zeroing in on the suspect pool cannot close
    // the gap even at the ladder floor, the innocent pool must give too.
    const Watts suspect_floor = schemes::estimate_power_at_uniform(
        suspect_nodes_, ladder.min_level());
    if (new_suspect == ladder.min_level() &&
        suspect_floor > suspect_allowance) {
      const Watts innocent_allowance =
          std::max(Watts{0.0}, budget - suspect_floor);
      innocent_target_ = schemes::find_uniform_level(
          innocent_nodes_, ladder, innocent_allowance, innocent_target_);
      schemes::request_uniform_level(innocent_nodes_, innocent_target_);
    }
    if (new_suspect != suspect_target_) {
      suspect_target_ = new_suspect;
      schemes::request_uniform_level(suspect_nodes_, suspect_target_);
    }

    // Step 3: the battery bridges this slot — DVFS actuation has latency
    // and the demand reduction only lands next slot; discharging keeps the
    // facility inside its budget in the meantime ("transition medium").
    if (battery != nullptr) {
      last_battery_power_ = battery->discharge(deficit, slot);
    }
    if (hub_ != nullptr) {
      obs_throttle_slots_->inc();
      trace_throttle(now, deficit, "uniform", nullptr);
    }
    return;
  }

  // Headroom path: restore the innocent pool first, then the suspect pool
  // one step at a time, then recharge the battery with what is left.
  Watts headroom = -deficit;
  if (innocent_target_ < ladder.max_level()) {
    const power::DvfsLevel next = innocent_target_ + 1;
    const Watts projected =
        schemes::estimate_power_at_uniform(innocent_nodes_, next) +
        schemes::estimate_power_at_uniform(suspect_nodes_, suspect_target_);
    if (projected <= budget * (1.0 - config_.headroom_margin)) {
      innocent_target_ = next;
      schemes::request_uniform_level(innocent_nodes_, innocent_target_);
      headroom = std::max(Watts{0.0}, budget - projected);
    }
  } else if (suspect_target_ < ladder.max_level()) {
    const power::DvfsLevel next = suspect_target_ + 1;
    const Watts projected =
        schemes::estimate_power_at_uniform(suspect_nodes_, next) +
        schemes::estimate_power_at_uniform(innocent_nodes_,
                                           innocent_target_);
    if (projected <= budget * (1.0 - config_.headroom_margin)) {
      suspect_target_ = next;
      schemes::request_uniform_level(suspect_nodes_, suspect_target_);
      headroom = std::max(Watts{0.0}, budget - projected);
    }
  }
  if (battery != nullptr && headroom > Watts{0.0} && !battery->full()) {
    battery->charge(headroom, slot);
  }
}

}  // namespace dope::antidope
