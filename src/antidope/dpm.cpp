#include "antidope/dpm.hpp"

#include <limits>

#include "common/audit.hpp"
#include "common/expect.hpp"

namespace dope::antidope {

ThrottleAssignment solve_throttling(
    const std::vector<server::ServerNode*>& nodes,
    const power::DvfsLadder& ladder, Watts allowance,
    power::DvfsLevel ceiling, SolveStats* stats) {
  DOPE_REQUIRE(!nodes.empty(), "need at least one node");
  DOPE_REQUIRE(ceiling < ladder.levels(), "ceiling out of range");

  ThrottleAssignment assignment(nodes.size(), ceiling);
  // Cache per-node power estimates at the current assignment.
  std::vector<Watts> node_power(nodes.size());
  Watts total{0.0};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    node_power[i] = nodes[i]->estimate_power_at(ceiling);
    total += node_power[i];
  }

  while (total > allowance) {
    // Pick the single step-down with the best watts-per-gigahertz ratio.
    using WattsPerGHz = decltype(Watts{} / GHz{});
    std::size_t best = nodes.size();
    WattsPerGHz best_ratio{-1.0};
    Watts best_saving{0.0};
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (assignment[i] == ladder.min_level()) continue;
      const auto next = assignment[i] - 1;
      const Watts saving =
          node_power[i] - nodes[i]->estimate_power_at(next);
      const GHz lost = ladder.frequency(assignment[i]) -
                       ladder.frequency(next);
      // Clamped (saturated) nodes may save ~0 W for a step; still allow
      // the move so the search cannot stall, but rank it last.
      const WattsPerGHz ratio = saving / std::max(lost, GHz{1e-9});
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
        best_saving = saving;
      }
    }
    if (best == nodes.size()) break;  // everything at the floor
    assignment[best] -= 1;
    node_power[best] -= best_saving;
    total -= best_saving;
    if (stats != nullptr) ++stats->iterations;
  }
  if (stats != nullptr) {
    stats->final_power = total;
    stats->throttled_nodes = 0;
    for (const auto level : assignment) {
      if (level < ceiling) ++stats->throttled_nodes;
    }
  }
  if constexpr (audit::kEnabled) {
    // Eq. 1 feasibility: the returned assignment fits the allowance
    // unless the budget is infeasible even at the ladder floor.
    bool all_at_floor = true;
    for (const auto level : assignment) {
      if (level != ladder.min_level()) {
        all_at_floor = false;
        break;
      }
    }
    audit::check_budget_feasible(nullptr, -1, total, allowance,
                                 all_at_floor);
  }
  return assignment;
}

Watts assignment_power(const std::vector<server::ServerNode*>& nodes,
                       const ThrottleAssignment& assignment) {
  DOPE_REQUIRE(nodes.size() == assignment.size(),
               "assignment size mismatch");
  Watts total{0.0};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    total += nodes[i]->estimate_power_at(assignment[i]);
  }
  return total;
}

GHz assignment_frequency(const power::DvfsLadder& ladder,
                         const ThrottleAssignment& assignment) {
  GHz total{0.0};
  for (const auto level : assignment) total += ladder.frequency(level);
  return total;
}

void apply_assignment(const std::vector<server::ServerNode*>& nodes,
                      const ThrottleAssignment& assignment) {
  DOPE_REQUIRE(nodes.size() == assignment.size(),
               "assignment size mismatch");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i]->request_level(assignment[i]);
  }
}

}  // namespace dope::antidope
