// n-level power classification (paper Section 5.3).
//
// The request-control model divides the incoming flow Q into n power
// levels ⟨q₀, q₁, …, qₙ⟩ by the provided service types — a finer notion
// than the binary suspect list. Class 0 is the lightest; higher classes
// draw more power per request. `PowerClassifier` builds that partition
// from per-request powers (catalog ground truth or profiler
// measurements) using equal-frequency (quantile) boundaries over the
// distinct power values, and decomposes traffic into the ⟨qᵢ⟩ vector
// Eq. 1 reasons about.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "workload/catalog.hpp"
#include "workload/request.hpp"

namespace dope::antidope {

/// Maps URL classes to one of n power levels.
class PowerClassifier {
 public:
  /// Builds from explicit per-type powers (indexed by type id).
  PowerClassifier(std::vector<Watts> per_type_power,
                  std::size_t num_classes);

  /// Builds from the catalog's analytic per-request powers at f_max.
  static PowerClassifier from_catalog(const workload::Catalog& catalog,
                                      std::size_t num_classes);

  std::size_t num_classes() const { return num_classes_; }
  std::size_t num_types() const { return class_of_.size(); }

  /// Power level of a URL class (0 = lightest).
  std::size_t class_of(workload::RequestTypeId type) const;

  /// Inclusive upper power bound of class `c` (the heaviest member).
  Watts class_ceiling(std::size_t c) const;

  /// Types assigned to class `c`.
  std::vector<workload::RequestTypeId> members(std::size_t c) const;

  /// Decomposes a stream of request types into the ⟨q₀…qₙ⟩ count vector.
  std::vector<std::size_t> decompose(
      const std::vector<workload::RequestTypeId>& stream) const;

  /// Eq. 1 feasibility: Σ qᵢ · Pᵢ(rel) ≤ budget, where Pᵢ is the class
  /// ceiling scaled by the catalog's mean frequency-sensitivity of that
  /// class (a conservative bound used for admission-style checks).
  bool fits_budget(const std::vector<std::size_t>& q, double rel,
                   Watts budget,
                   const workload::Catalog& catalog) const;

 private:
  std::vector<std::size_t> class_of_;
  std::vector<Watts> per_type_power_;
  std::size_t num_classes_;
};

}  // namespace dope::antidope
