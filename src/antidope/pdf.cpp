#include "antidope/pdf.hpp"

#include <utility>

namespace dope::antidope {

PdfRouter::PdfRouter(SuspectList suspects,
                     std::vector<net::Backend*> suspect_pool,
                     std::vector<net::Backend*> innocent_pool,
                     net::LbPolicy policy)
    : suspects_(std::move(suspects)),
      suspect_lb_(policy, std::move(suspect_pool)),
      innocent_lb_(policy, std::move(innocent_pool)) {}

void PdfRouter::bind_spans(sim::Engine* engine, obs::SpanTracer* spans) {
  suspect_lb_.bind_spans(engine, spans, "suspect");
  innocent_lb_.bind_spans(engine, spans, "innocent");
}

void PdfRouter::update_suspects(SuspectList suspects) {
  suspects_ = std::move(suspects);
}

net::Backend* PdfRouter::route(const workload::Request& request) {
  if (is_suspect(request)) {
    ++suspect_routed_;
    return suspect_lb_.select(request);
  }
  ++innocent_routed_;
  net::Backend* b = innocent_lb_.select(request);
  if (b == nullptr) {
    // Innocent pool drained/unavailable: degrade into the suspect pool
    // rather than dropping legitimate work.
    b = suspect_lb_.select(request);
  }
  return b;
}

}  // namespace dope::antidope
