// Anti-DOPE: request-aware power management (the paper's contribution).
//
// Couples two halves that conventional data centers keep apart:
//
//   PDF  (network side)  — classify by URL power class, isolate suspect
//                          requests on a dedicated server pool;
//   RPM  (power side)    — on a budget violation, run Differentiated
//                          Power Management (Algorithm 1): let the battery
//                          bridge the actuation transient, then throttle
//                          the *suspect pool only*, searching the DVFS
//                          ladder for the highest level satisfying
//                          Σ qᵢ·Pᵢ(f) ≤ B₀ (Eq. 1). The innocent pool is
//                          touched only as a last resort.
//
// The result: a DOPE flood saturates and throttles the suspect pool while
// legitimate (mostly low-power) traffic keeps its full frequency — 44 %
// shorter mean response time and 68 % better p90 in the paper's trace
// evaluation versus conventional capping.
#pragma once

#include <memory>
#include <optional>

#include "antidope/online_classifier.hpp"
#include "antidope/pdf.hpp"
#include "antidope/suspect_list.hpp"
#include "cluster/cluster.hpp"
#include "cluster/scheme.hpp"

namespace dope::obs {
class Counter;
class Hub;
}  // namespace dope::obs

namespace dope::antidope {

struct SolveStats;  // dpm.hpp

/// Anti-DOPE tuning parameters.
struct AntiDopeConfig {
  /// Per-request power (watts at f_max) above which a URL class is
  /// forwarded to the suspect pool. 10 W separates Colla-Filt/K-means/
  /// Word-Count from the light request types in the standard catalog.
  Watts suspect_power_threshold{10.0};
  /// Fraction of servers dedicated to the suspect pool (at least one).
  double suspect_pool_fraction = 0.25;
  /// Hysteresis headroom for frequency restoration.
  double headroom_margin = 0.02;
  /// Use the cluster battery as the actuation-transient bridge.
  bool use_battery = true;
  /// Balancing policy inside each pool.
  net::LbPolicy pool_policy = net::LbPolicy::kLeastLoaded;
  /// Pre-built suspect list (e.g. from measured offline profiling);
  /// when absent, the list is derived from the catalog at attach time.
  std::optional<SuspectList> suspect_list;
  /// Learn per-URL power online from node telemetry and keep the suspect
  /// list current — catches attack URLs that were never profiled offline.
  bool online_learning = false;
  OnlineClassifierConfig online{};
  /// Solve Algorithm 1's heterogeneous throttling list TL(p,q) per node
  /// (greedy watts-per-hertz) instead of one uniform suspect-pool level.
  bool per_node_throttling = false;
};

/// The Anti-DOPE power scheme; install into a Cluster.
class AntiDopeScheme final : public cluster::PowerScheme {
 public:
  explicit AntiDopeScheme(AntiDopeConfig config = {});

  std::string name() const override { return "Anti-DOPE"; }
  void attach(cluster::Cluster& cluster) override;
  void detach() override;
  net::Backend* route(const workload::Request& request) override;
  void on_slot(Time now, Duration slot) override;

  const PdfRouter& router() const { return *router_; }
  const SuspectList& suspects() const { return router_->suspects(); }
  std::size_t suspect_pool_size() const { return suspect_nodes_.size(); }

  /// Watts the battery delivered in the most recent slot (telemetry).
  Watts last_battery_power() const { return last_battery_power_; }
  /// Current suspect-pool throttling level.
  power::DvfsLevel suspect_level() const { return suspect_target_; }
  /// Current innocent-pool level (max unless last-resort throttling hit).
  power::DvfsLevel innocent_level() const { return innocent_target_; }

  /// The online classifier, when enabled (nullptr otherwise).
  const OnlineClassifier* classifier() const { return classifier_.get(); }

 private:
  void trace_throttle(Time now, Watts deficit, const char* mode,
                      const SolveStats* stats) const;

  AntiDopeConfig config_;
  std::unique_ptr<PdfRouter> router_;
  std::vector<server::ServerNode*> suspect_nodes_;
  std::vector<server::ServerNode*> innocent_nodes_;
  power::DvfsLevel suspect_target_ = 0;
  power::DvfsLevel innocent_target_ = 0;
  Watts last_battery_power_{0.0};
  std::unique_ptr<OnlineClassifier> classifier_;
  obs::Hub* hub_ = nullptr;
  obs::Counter* obs_tl_iterations_ = nullptr;
  obs::Counter* obs_throttle_slots_ = nullptr;
};

}  // namespace dope::antidope
