#include "antidope/suspect_list.hpp"

#include "common/expect.hpp"
#include "power/power_model.hpp"

namespace dope::antidope {

SuspectList::SuspectList(std::vector<bool> suspicious)
    : suspicious_(std::move(suspicious)) {
  DOPE_REQUIRE(!suspicious_.empty(), "suspect list must not be empty");
}

SuspectList SuspectList::from_catalog(const workload::Catalog& catalog,
                                      Watts threshold) {
  DOPE_REQUIRE(threshold > Watts{0.0}, "threshold must be positive");
  std::vector<bool> flags(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& profile =
        catalog.type(static_cast<workload::RequestTypeId>(i));
    flags[i] = power::active_power(profile.power, 1.0) >= threshold;
  }
  return SuspectList(std::move(flags));
}

SuspectList SuspectList::from_measurements(const std::vector<Watts>& measured,
                                           Watts threshold) {
  DOPE_REQUIRE(!measured.empty(), "need at least one measurement");
  DOPE_REQUIRE(threshold > Watts{0.0}, "threshold must be positive");
  std::vector<bool> flags(measured.size());
  for (std::size_t i = 0; i < measured.size(); ++i) {
    flags[i] = measured[i] >= threshold;
  }
  return SuspectList(std::move(flags));
}

bool SuspectList::suspicious(workload::RequestTypeId type) const {
  DOPE_REQUIRE(type < suspicious_.size(), "type id outside suspect list");
  return suspicious_[type];
}

std::size_t SuspectList::suspect_count() const {
  std::size_t n = 0;
  for (bool b : suspicious_) n += b ? 1 : 0;
  return n;
}

}  // namespace dope::antidope
