#include "antidope/online_classifier.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace dope::antidope {

OnlineClassifier::OnlineClassifier(std::size_t types, SuspectList initial,
                                   OnlineClassifierConfig config)
    : config_(config),
      ewma_(types, Watts{0.0}),
      count_(types, 0),
      flags_(types, false),
      suspects_(std::move(initial)) {
  DOPE_REQUIRE(types > 0, "need at least one type");
  DOPE_REQUIRE(suspects_.size() == types,
               "initial suspect list size mismatch");
  DOPE_REQUIRE(config_.suspect_threshold > Watts{0.0},
               "threshold must be positive");
  DOPE_REQUIRE(config_.alpha > 0.0 && config_.alpha <= 1.0,
               "alpha must be in (0, 1]");
  DOPE_REQUIRE(config_.hysteresis >= 0.0 && config_.hysteresis < 1.0,
               "hysteresis must be in [0, 1)");
  for (std::size_t t = 0; t < types; ++t) {
    flags_[t] = suspects_.suspicious(static_cast<workload::RequestTypeId>(t));
  }
}

OnlineClassifier OnlineClassifier::untrained(std::size_t types,
                                             OnlineClassifierConfig config) {
  return OnlineClassifier(types, SuspectList(std::vector<bool>(types, false)),
                          config);
}

void OnlineClassifier::observe(const server::ServerNode& node) {
  const unsigned active = node.active_count();
  if (active == 0) return;
  const Watts idle = node.power_model().idle_power(node.level());
  const Watts above_idle =
      std::max(Watts{0.0}, node.current_power() - idle);
  const Watts share = above_idle / static_cast<double>(active);
  node.visit_active([this, share](workload::RequestTypeId type) {
    ingest(type, share);
  });
}

void OnlineClassifier::ingest(workload::RequestTypeId type,
                              Watts per_request_power) {
  DOPE_REQUIRE(type < ewma_.size(), "type id out of range");
  DOPE_REQUIRE(per_request_power >= Watts{0.0},
               "power must be non-negative");
  Watts& ewma = ewma_[type];
  if (count_[type] == 0) {
    ewma = per_request_power;
  } else {
    ewma += config_.alpha * (per_request_power - ewma);
  }
  ++count_[type];
  if (count_[type] >= config_.min_observations) reclassify(type);
}

void OnlineClassifier::reclassify(workload::RequestTypeId type) {
  const Watts up = config_.suspect_threshold;
  const Watts down = up * (1.0 - config_.hysteresis);
  const bool was = flags_[type];
  bool now = was;
  if (!was && ewma_[type] >= up) now = true;
  if (was && ewma_[type] < down) now = false;
  if (now != was) {
    flags_[type] = now;
    suspects_ = SuspectList(std::vector<bool>(flags_.begin(), flags_.end()));
    ++reclassifications_;
  }
}

Watts OnlineClassifier::estimate(workload::RequestTypeId type) const {
  DOPE_REQUIRE(type < ewma_.size(), "type id out of range");
  return count_[type] ? ewma_[type] : Watts{0.0};
}

std::size_t OnlineClassifier::observations(
    workload::RequestTypeId type) const {
  DOPE_REQUIRE(type < count_.size(), "type id out of range");
  return count_[type];
}

}  // namespace dope::antidope
