#include "antidope/graded.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace dope::antidope {

GradedAntiDopeScheme::GradedAntiDopeScheme(GradedConfig config)
    : config_(config) {
  DOPE_REQUIRE(config_.num_classes >= 2, "graded needs >= 2 classes");
  DOPE_REQUIRE(config_.pool_fraction_per_class > 0.0,
               "pool fraction must be positive");
  DOPE_REQUIRE(static_cast<double>(config_.num_classes - 1) *
                       config_.pool_fraction_per_class <
                   1.0,
               "class pools leave no room for the lightest class");
  DOPE_REQUIRE(
      config_.headroom_margin >= 0.0 && config_.headroom_margin < 1.0,
      "headroom margin must be in [0, 1)");
}

void GradedAntiDopeScheme::attach(cluster::Cluster& cluster) {
  ControlStage::attach(cluster);
  classifier_ = std::make_unique<PowerClassifier>(
      PowerClassifier::from_catalog(cluster.catalog(),
                                    config_.num_classes));
  auto nodes = cluster.data().servers();
  DOPE_REQUIRE(nodes.size() >= config_.num_classes,
               "need at least one server per class");

  // Heaviest classes get their dedicated slices from the top of the
  // index range; the lightest class keeps the (large) remainder.
  const auto per_class = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(nodes.size()) *
                 config_.pool_fraction_per_class +
             0.5));
  pools_.clear();
  pools_.resize(config_.num_classes);
  std::size_t cursor = nodes.size();
  for (std::size_t c = config_.num_classes - 1; c >= 1; --c) {
    const std::size_t take =
        std::min(per_class, cursor - 1);  // always leave >= 1 for class 0
    for (std::size_t i = 0; i < take; ++i) {
      pools_[c].nodes.push_back(nodes[--cursor]);
    }
  }
  for (std::size_t i = 0; i < cursor; ++i) {
    pools_[0].nodes.push_back(nodes[i]);
  }
  for (auto& pool : pools_) {
    DOPE_REQUIRE(!pool.nodes.empty(), "empty class pool");
    pool.balancer = std::make_unique<net::LoadBalancer>(
        net::LbPolicy::kLeastLoaded,
        std::vector<net::Backend*>(pool.nodes.begin(), pool.nodes.end()));
    pool.target = cluster.ladder().max_level();
  }
}

net::Backend* GradedAntiDopeScheme::route(
    const workload::Request& request) {
  const std::size_t c = classifier_->class_of(request.type);
  net::Backend* b = pools_[c].balancer->select(request);
  if (b == nullptr && c == 0) {
    // Lightest class may degrade upward into the class-1 pool rather
    // than dropping legitimate traffic; heavy classes never spill down.
    b = pools_[1].balancer->select(request);
  }
  return b;
}

void GradedAntiDopeScheme::detach() {
  pools_.clear();
  classifier_.reset();
  ControlStage::detach();
}

void GradedAntiDopeScheme::on_slot(Time now, Duration slot) {
  (void)now;
  const Watts budget = cluster_->power().budget();
  const Watts demand = cluster_->data().total_power();
  const auto& ladder = cluster_->ladder();
  battery::Battery* battery =
      config_.use_battery ? cluster_->power().battery() : nullptr;

  last_battery_power_ = Watts{0.0};
  const Watts deficit = demand - budget;
  if (deficit > Watts{0.0}) {
    // Throttle heaviest class first; each class gets whatever remains of
    // the budget after every other pool's current draw. The lightest
    // class (c == 0) is never throttled here.
    for (std::size_t c = pools_.size() - 1; c >= 1; --c) {
      Pool& pool = pools_[c];
      // Allowance: budget minus everything outside this pool at its
      // current target.
      Watts outside{0.0};
      for (std::size_t other = 0; other < pools_.size(); ++other) {
        if (other == c) continue;
        outside += schemes::estimate_power_at_uniform(
            pools_[other].nodes, pools_[other].target);
      }
      const Watts allowance = std::max(Watts{0.0}, budget - outside);
      const auto level = schemes::find_uniform_level(
          pool.nodes, ladder, allowance, pool.target);
      if (level != pool.target) {
        pool.target = level;
        schemes::request_uniform_level(pool.nodes, pool.target);
      }
      // If this class alone brought the estimate under budget, lighter
      // classes stay untouched.
      const Watts projected =
          outside +
          schemes::estimate_power_at_uniform(pool.nodes, pool.target);
      if (projected <= budget) break;
    }
    if (battery != nullptr) {
      last_battery_power_ = battery->discharge(deficit, slot);
    }
    return;
  }

  // Headroom: restore lightest-first, one pool-step per slot.
  Watts headroom = -deficit;
  for (std::size_t c = 0; c < pools_.size(); ++c) {
    Pool& pool = pools_[c];
    if (pool.target >= ladder.max_level()) continue;
    const auto next = pool.target + 1;
    Watts projected = schemes::estimate_power_at_uniform(pool.nodes, next);
    for (std::size_t other = 0; other < pools_.size(); ++other) {
      if (other == c) continue;
      projected += schemes::estimate_power_at_uniform(
          pools_[other].nodes, pools_[other].target);
    }
    if (projected <= budget * (1.0 - config_.headroom_margin)) {
      pool.target = next;
      schemes::request_uniform_level(pool.nodes, pool.target);
      headroom = std::max(Watts{0.0}, budget - projected);
    }
    break;  // one adjustment per slot
  }
  if (battery != nullptr && headroom > Watts{0.0} && !battery->full()) {
    battery->charge(headroom, slot);
  }
}

}  // namespace dope::antidope
