#include "obs/live.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace dope::obs {

namespace {

std::uint64_t to_word(double v) { return std::bit_cast<std::uint64_t>(v); }
double from_word(std::uint64_t w) { return std::bit_cast<double>(w); }

void pack(const LiveSnapshot& snap, std::uint64_t (&words)[9]) {
  words[0] = snap.seq;
  words[1] = snap.runs_total;
  words[2] = snap.runs_completed;
  words[3] = snap.runs_failed;
  words[4] = to_word(snap.wall_ms_sum);
  words[5] = to_word(snap.wall_ms_min);
  words[6] = to_word(snap.wall_ms_max);
  words[7] = snap.wall_ms_count;
  words[8] = snap.done ? 1 : 0;
}

void unpack(const std::uint64_t (&words)[9], LiveSnapshot& snap) {
  snap.seq = words[0];
  snap.runs_total = words[1];
  snap.runs_completed = words[2];
  snap.runs_failed = words[3];
  snap.wall_ms_sum = from_word(words[4]);
  snap.wall_ms_min = from_word(words[5]);
  snap.wall_ms_max = from_word(words[6]);
  snap.wall_ms_count = words[7];
  snap.done = words[8] != 0;
}

}  // namespace

void LiveTap::publish(LiveSnapshot snap) {
  const std::uint64_t seq = next_seq_++;
  snap.seq = seq;
  Slot& slot = slots_[seq % kSlots];

  std::uint64_t words[kWords];
  pack(snap, words);

  // Seqlock write: mark the slot odd, store the payload, mark it even,
  // then advance head. Readers that catch the slot mid-write see an odd
  // or changed counter and retry.
  const std::uint64_t mark = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(mark + 1, std::memory_order_release);
  for (std::size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(mark + 2, std::memory_order_release);
  head_.store(seq, std::memory_order_release);
}

bool LiveTap::latest(LiveSnapshot& out) const {
  for (int attempt = 0; attempt < 1024; ++attempt) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (head == 0) return false;
    const Slot& slot = slots_[head % kSlots];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 % 2 != 0) continue;  // producer mid-write; retry
    std::uint64_t words[kWords];
    for (std::size_t i = 0; i < kWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
    if (s1 != s2) continue;  // torn read; retry
    unpack(words, out);
    // With kSlots > 1 the slot we read may already hold a *newer*
    // snapshot than `head` advertised — that is fine (still a complete
    // snapshot); it can never hold an older one.
    return true;
  }
  return false;
}

void write_live_json(std::ostream& out, const LiveSnapshot& snap) {
  out << "{\"seq\": " << snap.seq << ", \"done\": "
      << (snap.done ? "true" : "false")
      << ", \"runs_total\": " << snap.runs_total
      << ", \"runs_completed\": " << snap.runs_completed
      << ", \"runs_failed\": " << snap.runs_failed
      << ", \"wall_ms_count\": " << snap.wall_ms_count
      << ", \"wall_ms_sum\": ";
  write_json_number(out, snap.wall_ms_sum);
  out << ", \"wall_ms_min\": ";
  write_json_number(out, snap.wall_ms_min);
  out << ", \"wall_ms_max\": ";
  write_json_number(out, snap.wall_ms_max);
  out << ", \"wall_ms_mean\": ";
  write_json_number(out, snap.wall_ms_count > 0
                             ? snap.wall_ms_sum /
                                   static_cast<double>(snap.wall_ms_count)
                             : 0.0);
  out << "}\n";
}

void write_live_prometheus(std::ostream& out, const LiveSnapshot& snap) {
  const auto gauge = [&out](const char* name, double value,
                            const char* help) {
    out << "# HELP " << name << " " << help << "\n"
        << "# TYPE " << name << " gauge\n"
        << name << " ";
    write_json_number(out, value);
    out << "\n";
  };
  gauge("dope_sweep_runs_total", static_cast<double>(snap.runs_total),
        "Grid points in the sweep.");
  gauge("dope_sweep_runs_completed",
        static_cast<double>(snap.runs_completed),
        "Grid points finished (ok or failed).");
  gauge("dope_sweep_runs_failed", static_cast<double>(snap.runs_failed),
        "Grid points whose scenario threw.");
  gauge("dope_sweep_run_wall_ms_sum", snap.wall_ms_sum,
        "Total wall-clock milliseconds over completed runs.");
  gauge("dope_sweep_run_wall_ms_count",
        static_cast<double>(snap.wall_ms_count),
        "Completed runs contributing to wall-clock stats.");
  gauge("dope_sweep_done", snap.done ? 1.0 : 0.0,
        "1 once the whole grid has drained.");
}

namespace {

bool replace_with(const std::string& path,
                  const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << contents;
    if (!out.flush()) return false;
  }
  // POSIX rename atomically replaces the target: readers see either the
  // old snapshot or the new one, never a partial file.
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

bool replace_live_json(const std::string& path, const LiveSnapshot& snap) {
  std::ostringstream buf;
  write_live_json(buf, snap);
  return replace_with(path, buf.str());
}

bool replace_live_prometheus(const std::string& path,
                             const LiveSnapshot& snap) {
  std::ostringstream buf;
  write_live_prometheus(buf, snap);
  return replace_with(path, buf.str());
}

}  // namespace dope::obs
