// Incident post-mortems from flight-recorder bundles.
//
// `dopereport` (tools/dopereport_main.cpp) is a thin CLI over these two
// renderers. Input is the self-contained incident bundle JSON the
// FlightRecorder writes (docs/OBSERVABILITY.md); output is either a
// human-facing markdown post-mortem — incident timeline, pre-trigger
// signal sparklines, blast radius per zone, attack attribution against
// the forensics suspect ranking, SLO burn — or a compact JSON digest
// for dashboards.
//
// Rendering is pure text transformation: no simulator state, no wall
// clock — the same bundle renders byte-identically everywhere.
#pragma once

#include <iosfwd>
#include <string>

namespace dope::obs {

/// Renders `bundle_json` (a dope_incident_bundle document) as a
/// markdown post-mortem. Throws std::runtime_error on malformed input.
void write_postmortem_markdown(std::ostream& out,
                               const std::string& bundle_json);

/// Machine-readable digest of the same bundle: run context, SLO rollup,
/// and a per-incident summary (no ring payloads). Throws on malformed
/// input.
void write_postmortem_json(std::ostream& out,
                           const std::string& bundle_json);

}  // namespace dope::obs
