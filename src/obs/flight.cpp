#include "obs/flight.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <string_view>
#include <utility>

#include "obs/forensics.hpp"
#include "obs/json.hpp"

namespace dope::obs {

namespace {

/// Deterministic short rendering for detail strings.
std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Payload lookup in a trace event's numeric fields.
bool find_num(const TraceEvent& e, std::string_view key, double* out) {
  for (const auto& [k, v] : e.num) {
    if (key == k) {
      *out = v;
      return true;
    }
  }
  return false;
}

std::string find_str(const TraceEvent& e, std::string_view key) {
  for (const auto& [k, v] : e.str) {
    if (key == k) return v;
  }
  return {};
}

/// Nearest-rank percentile over a sorted sample vector.
double sorted_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t idx = static_cast<std::size_t>(
      std::clamp(rank - 1.0, 0.0,
                 static_cast<double>(sorted.size()) - 1.0));
  return sorted[idx];
}

}  // namespace

FlightRecorder::FlightRecorder(FlightConfig config,
                               const TimeSeriesStore* store,
                               const TraceRecorder* trace,
                               const SpanTracer* spans)
    : config_(config), store_(store), trace_(trace), spans_(spans) {}

void FlightRecorder::set_run_context(FlightRunContext context) {
  context_ = std::move(context);
}

void FlightRecorder::set_suspect_classes(
    std::vector<std::uint32_t> classes) {
  suspect_classes_ = std::move(classes);
}

void FlightRecorder::on_trace_event(const TraceEvent& e) {
  switch (e.type) {
    case EventType::kBreakerTrip: {
      if (!config_.on_breaker_trip) return;
      double zone = -1.0;
      find_num(e, "zone", &zone);
      double utility = 0.0;
      double rated = 0.0;
      std::string detail = e.source;
      if (find_num(e, "utility_w", &utility) &&
          find_num(e, "rated_w", &rated)) {
        detail += " utility_w=" + format_value(utility) +
                  " rated_w=" + format_value(rated);
      }
      capture(e.t, "BreakerTrip", detail, static_cast<int>(zone));
      return;
    }
    case EventType::kBudgetViolation: {
      if (!config_.on_budget_violation) return;
      double zone = -1.0;
      find_num(e, "zone", &zone);
      const int z = static_cast<int>(zone);
      const std::int64_t slot_idx =
          context_.slot > 0 ? e.t / context_.slot : e.t;
      // A violation one slot after the previous one (same zone) is the
      // same incident still burning, not a new onset.
      const auto it = last_violation_slot_.find(z);
      const bool onset =
          it == last_violation_slot_.end() || it->second < slot_idx - 1;
      last_violation_slot_[z] = slot_idx;
      if (!onset) return;
      double overshoot = 0.0;
      find_num(e, "overshoot_w", &overshoot);
      capture(e.t, "BudgetViolation",
              "overshoot_w=" + format_value(overshoot), z);
      return;
    }
    case EventType::kAlertRaised: {
      if (!config_.on_alert_raised) return;
      double zone = -1.0;
      find_num(e, "zone", &zone);
      capture(e.t, "AlertRaised", find_str(e, "rule"),
              static_cast<int>(zone));
      return;
    }
    default:
      return;
  }
}

void FlightRecorder::on_audit_failure(Time t, std::string_view check,
                                      std::string_view message) {
  if (!config_.on_audit_failure) return;
  std::string detail(check);
  if (!message.empty()) {
    detail += ": ";
    detail += message;
  }
  capture(t < 0 ? 0 : t, "AuditFailure", detail, -1);
}

void FlightRecorder::dump_now(Time t, std::string_view reason) {
  capture(t, "ManualDump", std::string(reason), -1);
}

void FlightRecorder::capture(Time t, const char* trigger,
                             const std::string& detail, int zone) {
  const std::int64_t slot_idx = context_.slot > 0 ? t / context_.slot : t;
  if (last_capture_slot_ >= 0 && slot_idx == last_capture_slot_) {
    ++deduped_;
    return;
  }
  last_capture_slot_ = slot_idx;
  ++triggers_;
  if (incidents_.size() >= config_.max_incidents) {
    ++dropped_;
    return;
  }

  std::ostringstream out;
  out << "{\n      \"id\": " << (incidents_.size() + 1)
      << ",\n      \"t_us\": " << t << ", \"t_s\": ";
  write_json_number(out, to_seconds(t));
  out << ", \"slot_index\": " << slot_idx << ",\n      \"trigger\": ";
  write_json_string(out, trigger);
  out << ", \"detail\": ";
  write_json_string(out, detail);
  out << ", \"zone\": " << zone;

  out << ",\n      \"series\": ";
  if (store_ != nullptr) {
    store_->write_json(out);
  } else {
    out << "{}";
  }

  out << ",\n      \"trace_tail\": [";
  if (trace_ != nullptr) {
    const auto& events = trace_->events();
    const std::size_t n = std::min(config_.trace_tail, events.size());
    for (std::size_t k = events.size() - n; k < events.size(); ++k) {
      if (k > events.size() - n) out << ',';
      out << "\n        ";
      write_jsonl_event(out, events[k]);
    }
    if (n > 0) out << "\n      ";
  }
  out << ']';

  out << ",\n      \"open_spans\": [";
  std::size_t open_total = 0;
  if (spans_ != nullptr) {
    std::size_t listed = 0;
    for (const Span& span : spans_->spans()) {
      if (!span.open()) continue;
      ++open_total;
      if (listed >= config_.open_span_cap) continue;
      if (listed > 0) out << ',';
      out << "\n        ";
      write_span_begin_jsonl(out, span);
      ++listed;
    }
    if (listed > 0) out << "\n      ";
  }
  out << "], \"open_span_count\": " << open_total;

  out << ",\n      \"forensics\": ";
  if (spans_ != nullptr && trace_ != nullptr) {
    const Forensics forensics = Forensics::build(*spans_, *trace_, t);
    out << "{\"total_joules\": ";
    write_json_number(out, forensics.total_joules().value());
    out << ", \"violation_events\": " << forensics.violation_events()
        << ", \"suspects\": [";
    const std::vector<SourceStats> top =
        forensics.top_by_joules(config_.forensics_top_k);
    for (std::size_t i = 0; i < top.size(); ++i) {
      const SourceStats& s = top[i];
      if (i > 0) out << ',';
      const bool suspicious =
          std::find(suspect_classes_.begin(), suspect_classes_.end(),
                    s.dominant_class) != suspect_classes_.end();
      out << "\n        {\"source_id\": " << s.source_id
          << ", \"requests\": " << s.requests
          << ", \"completed\": " << s.completed << ", \"joules\": ";
      write_json_number(out, s.joules.value());
      out << ", \"occupancy_ms\": ";
      write_json_number(out, s.occupancy_ms);
      out << ", \"violation_overlaps\": " << s.violation_overlaps
          << ", \"dominant_class\": " << s.dominant_class
          << ", \"dominant_zone\": " << s.dominant_zone
          << ", \"suspicious\": " << (suspicious ? "true" : "false")
          << '}';
    }
    if (!top.empty()) out << "\n      ";
    out << "]}";
  } else {
    out << "null";
  }
  out << "\n    }";
  incidents_.push_back(out.str());
}

void FlightRecorder::write_slo_json(std::ostream& out) const {
  if (spans_ == nullptr) {
    out << "null";
    return;
  }
  // Per-URL-class latency + completion rollup over closed root request
  // spans. std::map: classes export in sorted order.
  struct ClassStats {
    std::vector<double> lat_ms;
    std::uint64_t requests = 0;
    std::uint64_t completed = 0;
    std::uint64_t breaches = 0;
  };
  std::map<std::uint32_t, ClassStats> classes;
  for (const Span& span : spans_->spans()) {
    if (span.kind != SpanKind::kRequest || span.open()) continue;
    ClassStats& c = classes[span.url_class];
    ++c.requests;
    const bool completed = std::string_view(span.outcome) == "completed";
    if (completed) ++c.completed;
    const double lat_ms =
        static_cast<double>(span.end - span.begin) / 1000.0;
    c.lat_ms.push_back(lat_ms);
    if (!completed || lat_ms > config_.slo_latency_ms) ++c.breaches;
  }
  out << "{\"objective_ms\": ";
  write_json_number(out, config_.slo_latency_ms);
  out << ", \"error_budget\": ";
  write_json_number(out, config_.slo_error_budget);
  out << ", \"classes\": [";
  bool first = true;
  for (auto& [url_class, c] : classes) {
    if (!first) out << ',';
    first = false;
    std::sort(c.lat_ms.begin(), c.lat_ms.end());
    const double requests = static_cast<double>(c.requests);
    const double breach_rate =
        c.requests ? static_cast<double>(c.breaches) / requests : 0.0;
    const double burn = config_.slo_error_budget > 0.0
                            ? breach_rate / config_.slo_error_budget
                            : 0.0;
    out << "\n    {\"url_class\": " << url_class
        << ", \"requests\": " << c.requests
        << ", \"completed\": " << c.completed
        << ", \"breaches\": " << c.breaches << ", \"p50_ms\": ";
    write_json_number(out, sorted_percentile(c.lat_ms, 50));
    out << ", \"p95_ms\": ";
    write_json_number(out, sorted_percentile(c.lat_ms, 95));
    out << ", \"p99_ms\": ";
    write_json_number(out, sorted_percentile(c.lat_ms, 99));
    out << ", \"compliance\": ";
    write_json_number(out, 1.0 - breach_rate);
    out << ", \"burn_rate\": ";
    write_json_number(out, burn);
    out << '}';
  }
  if (!classes.empty()) out << "\n  ";
  out << "]}";
}

void FlightRecorder::write_json(std::ostream& out) const {
  out << "{\n  \"dope_incident_bundle\": 1,\n  \"run\": {\"seed\": ";
  // Seed as a decimal string: JSON readers that funnel numbers through
  // a double would corrupt seeds above 2^53.
  char seed_buf[24];
  std::snprintf(seed_buf, sizeof(seed_buf), "\"%" PRIu64 "\"",
                context_.seed);
  out << seed_buf;
  out << ", \"scheme\": ";
  write_json_string(out, context_.scheme);
  out << ", \"slot_us\": " << context_.slot
      << ", \"duration_us\": " << context_.duration << ", \"label\": ";
  write_json_string(out, context_.label);
  out << "},\n  \"triggers\": " << triggers_
      << ", \"deduped\": " << deduped_ << ", \"dropped\": " << dropped_
      << ",\n  \"slo\": ";
  write_slo_json(out);
  out << ",\n  \"incidents\": [";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    if (i > 0) out << ',';
    out << "\n    " << incidents_[i];
  }
  if (dropped_ > 0) {
    if (!incidents_.empty()) out << ',';
    out << "\n    {\"type\": \"IncidentTruncated\", \"dropped\": "
        << dropped_ << ", \"cap\": " << config_.max_incidents << '}';
  }
  if (!incidents_.empty() || dropped_ > 0) out << "\n  ";
  out << "]\n}\n";
}

}  // namespace dope::obs
