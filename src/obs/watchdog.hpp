// Alert watchdog — netdata-style sliding-window rules over windowed
// signals.
//
// Instrumented components feed the watchdog one sample per management
// window ("slot demand was 612 W", "battery SoC is 0.31") via
// `observe()`; each rule listening to that signal keeps a breach streak
// and *raises* an alert after K consecutive breaching windows — the
// netdata packet-storm pattern: a single spike is noise, a sustained
// condition is an incident. An active alert *clears* after
// `clear_after` consecutive clean windows, then re-arms.
//
// The watchdog is passive: it never touches the simulation engine, so
// alerting cannot perturb determinism. Raised/cleared transitions are
// mirrored into an attached TraceRecorder as kAlertRaised /
// kAlertCleared events.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "obs/trace.hpp"

namespace dope::obs {

/// Breach direction.
enum class AlertCmp { kAbove, kBelow };

/// One sliding-window rule.
struct AlertRule {
  /// Rule identity, e.g. "budget-violation-streak".
  std::string name;
  /// Signal key it evaluates, e.g. "cluster.slot_demand_w".
  std::string signal;
  AlertCmp cmp = AlertCmp::kAbove;
  double threshold = 0.0;
  /// Consecutive breaching windows required to raise.
  unsigned consecutive = 1;
  /// Consecutive clean windows required to clear again.
  unsigned clear_after = 1;
};

/// One raise (and optional clear) of a rule.
struct Alert {
  std::string rule;
  std::string signal;
  Time raised_at = 0;
  /// -1 while still active.
  Time cleared_at = -1;
  /// Signal value when the alert was raised.
  double value = 0.0;
  bool active() const { return cleared_at < 0; }
};

/// Evaluates rules against windowed signal samples.
class Watchdog {
 public:
  /// `trace` may be null (alerts are still recorded in `alerts()`).
  explicit Watchdog(TraceRecorder* trace = nullptr) : trace_(trace) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void add_rule(AlertRule rule);
  const std::vector<AlertRule>& rules() const { return rules_; }
  std::size_t rule_count() const { return states_.size(); }

  /// Hysteresis override for rules added *after* this call: replaces
  /// `consecutive` / `clear_after` (0 keeps the rule's own value).
  /// This is the `--alert-hysteresis R:C` knob — widening both windows
  /// stops alert flapping on an oscillating capped-power signal.
  void set_default_hysteresis(unsigned raise_windows,
                              unsigned clear_windows) {
    raise_override_ = raise_windows;
    clear_override_ = clear_windows;
  }

  /// Feeds one window sample of `signal`; every rule bound to that
  /// signal evaluates it immediately.
  void observe(std::string_view signal, Time t, double value);

  /// Every alert ever raised, in raise order.
  const std::vector<Alert>& alerts() const { return alerts_; }
  std::size_t active_count() const;
  /// True while the named rule has an unresolved alert.
  bool is_firing(std::string_view rule) const;

 private:
  struct RuleState {
    AlertRule rule;
    unsigned breach_streak = 0;
    unsigned clean_streak = 0;
    /// Index into alerts_ of the open alert, or -1.
    long open = -1;
  };

  void evaluate(RuleState& state, Time t, double value);

  TraceRecorder* trace_;
  std::vector<RuleState> states_;
  std::vector<AlertRule> rules_;
  std::vector<Alert> alerts_;
  unsigned raise_override_ = 0;
  unsigned clear_override_ = 0;
};

}  // namespace dope::obs
