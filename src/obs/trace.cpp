#include "obs/trace.hpp"

#include <map>
#include <ostream>
#include <string_view>

#include "obs/json.hpp"

namespace dope::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kRequestForwarded: return "RequestForwarded";
    case EventType::kRequestDropped: return "RequestDropped";
    case EventType::kBudgetViolation: return "BudgetViolation";
    case EventType::kLevelViolation: return "LevelViolation";
    case EventType::kThrottleApplied: return "ThrottleApplied";
    case EventType::kBatteryDischarge: return "BatteryDischarge";
    case EventType::kBatteryCharge: return "BatteryCharge";
    case EventType::kBreakerTrip: return "BreakerTrip";
    case EventType::kOutageEnd: return "OutageEnd";
    case EventType::kFirewallBan: return "FirewallBan";
    case EventType::kAttackPhase: return "AttackPhase";
    case EventType::kAlertRaised: return "AlertRaised";
    case EventType::kAlertCleared: return "AlertCleared";
  }
  return "?";
}

TraceRecorder::TraceRecorder(TraceConfig config) : config_(config) {}

void TraceRecorder::record(TraceEvent event) {
  ++recorded_;
  ++counts_[static_cast<std::size_t>(event.type)];
  const bool stored = events_.size() < config_.max_events;
  if (stored) events_.push_back(std::move(event));
  if (listener_) listener_(stored ? events_.back() : event);
}

std::size_t TraceRecorder::distinct_types() const {
  std::size_t n = 0;
  for (const auto c : counts_) {
    if (c > 0) ++n;
  }
  return n;
}

namespace {

void write_payload_fields(std::ostream& out, const TraceEvent& e) {
  for (const auto& [key, value] : e.num) {
    out << ", ";
    write_json_string(out, key);
    out << ": ";
    write_json_number(out, value);
  }
  for (const auto& [key, value] : e.str) {
    out << ", ";
    write_json_string(out, key);
    out << ": ";
    write_json_string(out, value);
  }
}

}  // namespace

void write_jsonl_event(std::ostream& out, const TraceEvent& e) {
  out << "{\"t_us\": " << e.t << ", \"t_s\": ";
  write_json_number(out, to_seconds(e.t));
  out << ", \"type\": ";
  write_json_string(out, event_type_name(e.type));
  out << ", \"source\": ";
  write_json_string(out, e.source);
  write_payload_fields(out, e);
  out << "}";
}

void TraceRecorder::write_jsonl(std::ostream& out) const {
  for (const auto& e : events_) {
    write_jsonl_event(out, e);
    out << "\n";
  }
  if (dropped() > 0) {
    out << "{\"type\": \"TraceTruncated\", \"dropped\": " << dropped()
        << ", \"cap\": " << config_.max_events << "}\n";
  }
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  write_chrome_body(out, first);
  out << "\n]}\n";
}

void TraceRecorder::write_chrome_body(std::ostream& out,
                                      bool& first) const {
  // One synthetic thread per emitting component so each gets its own row.
  std::map<std::string_view, int> tids;
  for (const auto& e : events_) {
    tids.emplace(e.source, 0);
  }
  int next_tid = 1;
  for (auto& [source, tid] : tids) tid = next_tid++;

  for (const auto& [source, tid] : tids) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    write_json_string(out, source);
    out << "}}";
  }
  for (const auto& e : events_) {
    if (!first) out << ",\n";
    first = false;
    // Instant event, thread scope; ts is already microseconds.
    out << "{\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": "
        << tids[e.source] << ", \"ts\": " << e.t << ", \"name\": ";
    write_json_string(out, event_type_name(e.type));
    out << ", \"args\": {";
    bool first_arg = true;
    for (const auto& [key, value] : e.num) {
      if (!first_arg) out << ", ";
      first_arg = false;
      write_json_string(out, key);
      out << ": ";
      write_json_number(out, value);
    }
    for (const auto& [key, value] : e.str) {
      if (!first_arg) out << ", ";
      first_arg = false;
      write_json_string(out, key);
      out << ": ";
      write_json_string(out, value);
    }
    out << "}}";
  }
  if (dropped() > 0) {
    if (!first) out << ",\n";
    out << "{\"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \"tid\": 0, "
           "\"ts\": 0, \"name\": \"TraceTruncated\", \"args\": "
           "{\"dropped\": "
        << dropped() << "}}";
    first = false;
  }
}

}  // namespace dope::obs
