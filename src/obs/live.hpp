// Live sweep telemetry: a lock-free snapshot ring plus file exporters.
//
// A multi-hour `dope::sweep` run is otherwise a black box until exit.
// The sweep's completion path (single producer) publishes a small
// fixed-size `LiveSnapshot` into a seqlock ring; a drainer thread in the
// CLI reads the latest snapshot wait-free — without ever blocking the
// worker that published it — and emits progress lines, an atomically
// replaced `live_metrics.json`, and a Prometheus text-format sibling.
//
// The ring stores snapshots as relaxed atomic words guarded by an
// acquire/release sequence counter per slot (odd = write in progress),
// so torn reads are detected and retried rather than observed: the
// classic seqlock, expressed in atomics so TSan agrees it is race-free.
// Snapshots are host-side telemetry only — nothing here feeds back into
// simulation results, which stay byte-identical with or without a tap.
//
// Thread-safety analysis (common/thread_annotations.hpp): a seqlock has
// no capability clang's -Wthread-safety lane can model — the protocol
// lives in the atomics, and TSan (not the static analysis) is the tier
// that checks it. The single-producer contract on `publish` / the
// producer-only `next_seq_` is enforced where publishers actually run:
// sweep.cpp calls publish() only under ProgressBoard::mu (GUARDED_BY).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace dope::obs {

/// One progress snapshot of a sweep in flight.
struct LiveSnapshot {
  /// Publication sequence number (1-based; 0 = never published).
  std::uint64_t seq = 0;
  std::uint64_t runs_total = 0;
  std::uint64_t runs_completed = 0;
  std::uint64_t runs_failed = 0;
  /// Wall-clock stats over completed runs (milliseconds).
  double wall_ms_sum = 0.0;
  double wall_ms_min = 0.0;
  double wall_ms_max = 0.0;
  std::uint64_t wall_ms_count = 0;
  /// True on the final snapshot, after the grid has drained.
  bool done = false;
};

/// Single-producer / multi-reader snapshot ring.
class LiveTap {
 public:
  LiveTap() = default;

  LiveTap(const LiveTap&) = delete;
  LiveTap& operator=(const LiveTap&) = delete;

  /// Publishes `snap` (its `seq` is assigned). Single producer only.
  void publish(LiveSnapshot snap);

  /// Copies the most recent snapshot into `out`; false when nothing has
  /// been published yet. Wait-free for the producer; the reader retries
  /// while the producer is mid-write on the same slot.
  bool latest(LiveSnapshot& out) const;

  /// Snapshots published so far (producer-side count).
  std::uint64_t published() const {
    return head_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::size_t kSlots = 8;
  static constexpr std::size_t kWords = 9;

  struct Slot {
    /// Seqlock: odd while the producer is writing this slot.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kWords] = {};
  };

  Slot slots_[kSlots];
  /// Sequence number of the latest fully published snapshot.
  std::atomic<std::uint64_t> head_{0};
  std::uint64_t next_seq_ = 1;  // producer-only
};

/// Writes `snap` as a JSON object.
void write_live_json(std::ostream& out, const LiveSnapshot& snap);

/// Writes `snap` in Prometheus text exposition format
/// (`dope_sweep_*` gauges).
void write_live_prometheus(std::ostream& out, const LiveSnapshot& snap);

/// Atomically replaces `path` with the snapshot's JSON (write to a
/// `.tmp` sibling, then rename). Returns false on I/O failure.
bool replace_live_json(const std::string& path, const LiveSnapshot& snap);

/// Same, in Prometheus text format.
bool replace_live_prometheus(const std::string& path,
                             const LiveSnapshot& snap);

}  // namespace dope::obs
