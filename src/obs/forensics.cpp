#include "obs/forensics.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <string_view>

#include "obs/json.hpp"

namespace dope::obs {

namespace {

/// Build-time accumulator; std::map keeps every iteration deterministic.
struct SourceAccum {
  SourceStats stats;
  std::map<std::uint32_t, Joules> class_joules;
  std::map<std::uint32_t, std::uint64_t> class_requests;
  std::map<std::int32_t, Joules> zone_joules;
};

}  // namespace

Forensics Forensics::build(const SpanTracer& spans,
                           const TraceRecorder& trace, Time horizon) {
  Forensics out;

  // Violation instants, in trace (= time) order, for binary search.
  std::vector<Time> violations;
  for (const TraceEvent& e : trace.events()) {
    if (e.type == EventType::kBudgetViolation) violations.push_back(e.t);
  }
  out.violation_events_ = violations.size();

  if (horizon < 0) {
    for (const Span& span : spans.spans()) {
      horizon = std::max(horizon, span.begin);
      horizon = std::max(horizon, span.end);
    }
  }

  std::map<std::uint32_t, SourceAccum> accum;
  for (const Span& span : spans.spans()) {
    SourceAccum& a = accum[span.source_id];
    a.stats.source_id = span.source_id;
    switch (span.kind) {
      case SpanKind::kRequest: {
        ++a.stats.requests;
        ++a.class_requests[span.url_class];
        if (std::string_view(span.outcome) == "completed") {
          ++a.stats.completed;
        }
        break;
      }
      case SpanKind::kService: {
        const Time end = span.open() ? horizon : span.end;
        const Duration held = std::max<Duration>(end - span.begin, 0);
        a.stats.joules += span.power_w * held;
        a.stats.occupancy_ms += to_seconds(held) * 1e3;
        a.class_joules[span.url_class] += span.power_w * held;
        if (span.zone >= 0) {
          a.zone_joules[span.zone] += span.power_w * held;
        }
        const auto lo = std::lower_bound(violations.begin(),
                                         violations.end(), span.begin);
        const auto hi =
            std::upper_bound(violations.begin(), violations.end(), end);
        a.stats.violation_overlaps +=
            static_cast<std::uint64_t>(hi - lo);
        break;
      }
      case SpanKind::kFirewall:
      case SpanKind::kLbPick:
      case SpanKind::kQueue:
        break;
    }
  }

  out.sources_.reserve(accum.size());
  for (auto& [source_id, a] : accum) {
    // Dominant class: by joules when the source reached a slot at all,
    // by request count otherwise. std::map order makes ties break to the
    // lower class id.
    Joules best_j{0.0};
    for (const auto& [cls, j] : a.class_joules) {
      if (j > best_j) {
        best_j = j;
        a.stats.dominant_class = cls;
      }
    }
    if (best_j <= Joules{0.0}) {
      std::uint64_t best_n = 0;
      for (const auto& [cls, n] : a.class_requests) {
        if (n > best_n) {
          best_n = n;
          a.stats.dominant_class = cls;
        }
      }
    }
    // Dominant zone mirrors the class logic (joules only — a request
    // that never reached a slot has no zone attribution). std::map
    // order breaks ties to the lower zone index.
    Joules best_zone_j{0.0};
    for (const auto& [zone, j] : a.zone_joules) {
      if (j > best_zone_j) {
        best_zone_j = j;
        a.stats.dominant_zone = zone;
      }
    }
    out.total_joules_ += a.stats.joules;
    out.sources_.push_back(a.stats);
  }
  return out;
}

std::vector<SourceStats> Forensics::top_by_joules(std::size_t k) const {
  std::vector<SourceStats> ranked = sources_;
  std::sort(ranked.begin(), ranked.end(),
            [](const SourceStats& a, const SourceStats& b) {
              if (a.joules > b.joules) return true;
              if (a.joules < b.joules) return false;
              return a.source_id < b.source_id;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

void Forensics::write_json(std::ostream& out) const {
  out << "{\n  \"total_joules\": ";
  write_json_number(out, total_joules_.value());
  out << ",\n  \"violation_events\": " << violation_events_
      << ",\n  \"sources\": " << sources_.size() << ",\n  \"ranking\": [";
  const auto ranked = top_by_joules(sources_.size());
  bool first = true;
  for (const SourceStats& s : ranked) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"source_id\": " << s.source_id
        << ", \"requests\": " << s.requests
        << ", \"completed\": " << s.completed << ", \"joules\": ";
    write_json_number(out, s.joules.value());
    out << ", \"occupancy_ms\": ";
    write_json_number(out, s.occupancy_ms);
    out << ", \"violation_overlaps\": " << s.violation_overlaps
        << ", \"dominant_class\": " << s.dominant_class;
    // Emitted only for zoned (multi-zone) runs, so standalone-cluster
    // forensics exports stay byte-identical.
    if (s.dominant_zone >= 0) {
      out << ", \"dominant_zone\": " << s.dominant_zone;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace dope::obs
