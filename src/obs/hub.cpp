#include "obs/hub.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <vector>

#include "obs/json.hpp"

namespace dope::obs {

namespace {

/// One line of the merged JSONL export. `stream` orders ties: events
/// before span begins before span ends at the same timestamp, so an
/// instant span's End always follows its Begin.
struct MergeEntry {
  Time t = 0;
  int stream = 0;  // 0 = trace event, 1 = span begin, 2 = span end
  std::size_t idx = 0;
};

/// Chrome tid for a (server, slot) service track. Slot counts are core
/// counts (tens), so 1024 slots per server keeps tids disjoint.
int service_tid(const Span& span) {
  return span.server * 1024 + span.slot + 1;
}

void write_chrome_async(std::ostream& out, bool& first, const Span& span,
                        const char* cat, const char* name) {
  char id_buf[24];
  std::snprintf(id_buf, sizeof(id_buf), "0x%" PRIx64, span.id);
  if (!first) out << ",\n";
  first = false;
  out << "{\"ph\": \"b\", \"cat\": \"" << cat
      << "\", \"id\": \"" << id_buf << "\", \"pid\": 3, \"tid\": 0, "
      << "\"ts\": " << span.begin << ", \"name\": \"" << name
      << "\", \"args\": {\"span_id\": " << span.id
      << ", \"parent\": " << span.parent
      << ", \"source_id\": " << span.source_id
      << ", \"url_class\": " << span.url_class;
  if (span.server >= 0) out << ", \"server\": " << span.server;
  out << "}}";
  if (span.open()) return;
  out << ",\n{\"ph\": \"e\", \"cat\": \"" << cat
      << "\", \"id\": \"" << id_buf << "\", \"pid\": 3, \"tid\": 0, "
      << "\"ts\": " << span.end << ", \"name\": \"" << name
      << "\", \"args\": {\"outcome\": ";
  write_json_string(out, span.outcome);
  out << "}}";
}

}  // namespace

void Hub::write_trace_jsonl(std::ostream& out) const {
  if (spans_ == nullptr) {
    trace_.write_jsonl(out);
    return;
  }

  const auto& events = trace_.events();
  const auto& spans = spans_->spans();
  std::vector<MergeEntry> entries;
  entries.reserve(events.size() + 2 * spans.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    entries.push_back({events[i].t, 0, i});
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    entries.push_back({spans[i].begin, 1, i});
    if (!spans[i].open()) entries.push_back({spans[i].end, 2, i});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const MergeEntry& a, const MergeEntry& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.stream < b.stream;
                   });

  for (const MergeEntry& entry : entries) {
    switch (entry.stream) {
      case 0: write_jsonl_event(out, events[entry.idx]); break;
      case 1: write_span_begin_jsonl(out, spans[entry.idx]); break;
      default: write_span_end_jsonl(out, spans[entry.idx]); break;
    }
    out << "\n";
  }
  if (trace_.dropped() > 0) {
    out << "{\"type\": \"TraceTruncated\", \"dropped\": "
        << trace_.dropped() << ", \"cap\": " << trace_.max_events()
        << "}\n";
  }
  if (spans_->dropped() > 0) {
    out << "{\"type\": \"SpanTruncated\", \"dropped\": "
        << spans_->dropped() << ", \"cap\": " << spans_->max_spans()
        << "}\n";
  }
}

void Hub::write_chrome_trace(std::ostream& out) const {
  if (spans_ == nullptr) {
    trace_.write_chrome_trace(out);
    return;
  }

  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  trace_.write_chrome_body(out, first);

  // Span tracks. pid 1 carries the instant-event rows (above); pid 2 is
  // the per-(server, slot) occupancy tracks; pid 3 the async
  // request/queue lanes. Firewall/LB verdict spans are zero-duration
  // bookkeeping — they live in the JSONL export only.
  const auto& spans = spans_->spans();
  std::map<int, std::pair<int, int>> slot_tracks;  // tid -> (server, slot)
  for (const Span& span : spans) {
    if (span.kind == SpanKind::kService && span.server >= 0 &&
        span.slot >= 0) {
      slot_tracks.emplace(service_tid(span),
                          std::make_pair(span.server, span.slot));
    }
  }
  const auto metadata = [&](int pid, int tid, const char* key,
                            const std::string& name) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
        << ", \"name\": \"" << key << "\", \"args\": {\"name\": ";
    write_json_string(out, name);
    out << "}}";
  };
  if (!slot_tracks.empty()) metadata(2, 0, "process_name", "server slots");
  metadata(3, 0, "process_name", "requests");
  for (const auto& [tid, track] : slot_tracks) {
    metadata(2, tid, "thread_name",
             "server " + std::to_string(track.first) + " slot " +
                 std::to_string(track.second));
  }

  for (const Span& span : spans) {
    switch (span.kind) {
      case SpanKind::kService: {
        // One request per slot at a time, so adjacent B/E pairs per tid
        // are correctly nested; an open span emits B only (shown as
        // "did not finish").
        if (!first) out << ",\n";
        first = false;
        out << "{\"ph\": \"B\", \"pid\": 2, \"tid\": "
            << service_tid(span) << ", \"ts\": " << span.begin
            << ", \"name\": \"service c" << span.url_class
            << "\", \"args\": {\"span_id\": " << span.id
            << ", \"parent\": " << span.parent
            << ", \"source_id\": " << span.source_id
            << ", \"url_class\": " << span.url_class
            << ", \"power_w\": ";
        write_json_number(out, span.power_w.value());
        out << "}}";
        if (!span.open()) {
          out << ",\n{\"ph\": \"E\", \"pid\": 2, \"tid\": "
              << service_tid(span) << ", \"ts\": " << span.end
              << ", \"name\": \"service c" << span.url_class
              << "\", \"args\": {\"outcome\": ";
          write_json_string(out, span.outcome);
          out << "}}";
        }
        break;
      }
      case SpanKind::kRequest:
        write_chrome_async(out, first, span, "request", "request");
        break;
      case SpanKind::kQueue:
        write_chrome_async(out, first, span, "queue", "queue");
        break;
      case SpanKind::kFirewall:
      case SpanKind::kLbPick:
        break;
    }
  }
  if (spans_->dropped() > 0) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\": \"i\", \"s\": \"g\", \"pid\": 3, \"tid\": 0, "
           "\"ts\": 0, \"name\": \"SpanTruncated\", \"args\": "
           "{\"dropped\": "
        << spans_->dropped() << "}}";
  }
  out << "\n]}\n";
}

}  // namespace dope::obs
