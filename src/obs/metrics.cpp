#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <vector>

#include "common/expect.hpp"
#include "obs/json.hpp"

namespace dope::obs {

std::string encode_key(std::string_view name, const Labels& labels) {
  if (labels.empty()) return std::string(name);
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += "=\"";
    key += sorted[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

void Gauge::set(double v) {
  if (!written_) {
    min_ = max_ = v;
    written_ = true;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  value_ = v;
}

std::size_t Histo::bucket_of(double v) {
  if (!(v > 0.0)) return 0;
  int exp = 0;
  std::frexp(v, &exp);
  // exp is the binary exponent + 1 (frexp mantissa in [0.5, 1)). Centre
  // the usable range so sub-unit values (latencies in seconds, SoC
  // fractions) still resolve: bucket kBuckets/2 holds values in [1, 2).
  const long idx = static_cast<long>(kBuckets) / 2 + exp - 1;
  return static_cast<std::size_t>(
      std::clamp<long>(idx, 1, static_cast<long>(kBuckets) - 1));
}

void Histo::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[bucket_of(v)];
}

double Histo::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target) {
      if (i == 0) return std::min(0.0, max_);
      // Geometric midpoint of the bucket's power-of-two bounds, clamped
      // into the observed range.
      const int exp = static_cast<int>(i) - static_cast<int>(kBuckets) / 2;
      const double lo = std::ldexp(1.0, exp);
      const double mid = lo * 1.5;
      return std::clamp(mid, min_, max_);
    }
  }
  return max();
}

Registry::Entry& Registry::lookup(std::string_view name,
                                  const Labels& labels, Kind kind) {
  std::string key = encode_key(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& entry = *entries_[it->second];
    DOPE_REQUIRE(entry.kind == kind,
                 "instrument '" + key + "' already exists as another kind");
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHisto: entry->histo = std::make_unique<Histo>(); break;
  }
  index_.emplace(std::move(key), entries_.size());
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  return *lookup(name, labels, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  return *lookup(name, labels, Kind::kGauge).gauge;
}

Histo& Registry::histo(std::string_view name, const Labels& labels) {
  return *lookup(name, labels, Kind::kHisto).histo;
}

const Registry::Entry* Registry::find(std::string_view key,
                                      Kind kind) const {
  const auto it = index_.find(std::string(key));
  if (it == index_.end()) return nullptr;
  const Entry& entry = *entries_[it->second];
  return entry.kind == kind ? &entry : nullptr;
}

const Counter* Registry::find_counter(std::string_view key) const {
  const Entry* e = find(key, Kind::kCounter);
  return e ? e->counter.get() : nullptr;
}

const Gauge* Registry::find_gauge(std::string_view key) const {
  const Entry* e = find(key, Kind::kGauge);
  return e ? e->gauge.get() : nullptr;
}

const Histo* Registry::find_histo(std::string_view key) const {
  const Entry* e = find(key, Kind::kHisto);
  return e ? e->histo.get() : nullptr;
}

void Registry::write_json(std::ostream& out, bool percentiles) const {
  // Export in sorted-key order, not creation order: the bytes written
  // must not depend on which component happened to register first.
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(entry.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });

  const auto write_section = [&](const char* title, Kind kind,
                                 bool& first_section) {
    if (!first_section) out << ",\n";
    first_section = false;
    out << "  ";
    write_json_string(out, title);
    out << ": {";
    bool first = true;
    for (const auto* entry : sorted) {
      if (entry->kind != kind) continue;
      if (!first) out << ',';
      first = false;
      out << "\n    ";
      write_json_string(out, entry->key);
      out << ": ";
      switch (kind) {
        case Kind::kCounter:
          write_json_number(out, entry->counter->value());
          break;
        case Kind::kGauge:
          out << "{\"value\": ";
          write_json_number(out, entry->gauge->value());
          out << ", \"min\": ";
          write_json_number(out, entry->gauge->min_seen());
          out << ", \"max\": ";
          write_json_number(out, entry->gauge->max_seen());
          out << '}';
          break;
        case Kind::kHisto: {
          const Histo& h = *entry->histo;
          out << "{\"count\": " << h.count() << ", \"sum\": ";
          write_json_number(out, h.sum());
          out << ", \"min\": ";
          write_json_number(out, h.min());
          out << ", \"max\": ";
          write_json_number(out, h.max());
          out << ", \"mean\": ";
          write_json_number(out, h.mean());
          out << ", \"p50\": ";
          write_json_number(out, h.percentile(50));
          out << ", \"p99\": ";
          write_json_number(out, h.percentile(99));
          out << '}';
          break;
        }
      }
    }
    if (!first) out << "\n  ";
    out << '}';
  };

  out << "{\n";
  bool first_section = true;
  write_section("counters", Kind::kCounter, first_section);
  write_section("gauges", Kind::kGauge, first_section);
  write_section("histos", Kind::kHisto, first_section);
  if (percentiles) {
    // Opt-in summary section so reports (and humans) stop re-deriving
    // percentiles from the raw buckets. Same sorted-key order as
    // "histos".
    out << ",\n  \"percentiles\": {";
    bool first = true;
    for (const auto* entry : sorted) {
      if (entry->kind != Kind::kHisto) continue;
      if (!first) out << ',';
      first = false;
      out << "\n    ";
      write_json_string(out, entry->key);
      const Histo& h = *entry->histo;
      out << ": {\"p50\": ";
      write_json_number(out, h.percentile(50));
      out << ", \"p95\": ";
      write_json_number(out, h.percentile(95));
      out << ", \"p99\": ";
      write_json_number(out, h.percentile(99));
      out << '}';
    }
    if (!first) out << "\n  ";
    out << '}';
  }
  out << "\n}\n";
}

}  // namespace dope::obs
