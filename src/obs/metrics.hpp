// Metrics registry — named instruments for simulator telemetry.
//
// Three instrument kinds, modelled on the Prometheus vocabulary:
//
//   Counter  monotone accumulator ("requests forwarded");
//   Gauge    last-written value   ("queue depth", "slot demand watts");
//   Histo    value distribution   ("per-slot overshoot"), kept as
//            log2-bucketed counts plus exact count/sum/min/max.
//
// Instruments are identified by a name plus optional labels, e.g.
// `registry.counter("net.dropped", {{"reason", "firewall"}})`. The
// registry owns every instrument; callers cache the returned reference at
// construction time so the hot path is a single pointer-chased add with
// no lookup, no lock, and no allocation. The simulator is
// single-threaded per run, so updates are plain (non-atomic) stores —
// one `Registry` must not be shared by concurrently running scenarios.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dope::obs {

/// Instrument labels; order-insensitive (canonicalised by the registry).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical instrument key: `name` or `name{k="v",k2="v2"}` with labels
/// sorted by key.
std::string encode_key(std::string_view name, const Labels& labels);

/// Monotone accumulator.
class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-written value, with the extremes seen retained.
class Gauge {
 public:
  void set(double v);
  double value() const { return value_; }
  double min_seen() const { return min_; }
  double max_seen() const { return max_; }
  bool written() const { return written_; }

 private:
  double value_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool written_ = false;
};

/// Distribution sketch: exact count/sum/min/max plus log2 buckets.
class Histo {
 public:
  /// Bucket i holds values whose binary exponent is i - kZeroBucket - 1,
  /// i.e. bucket boundaries are powers of two; values <= 0 land in
  /// bucket 0.
  static constexpr std::size_t kBuckets = 96;

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Approximate percentile (p in [0, 100]) from the bucket counts;
  /// exact for the extremes, within a factor-of-two band otherwise.
  double percentile(double p) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  static std::size_t bucket_of(double v);

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Owner of all instruments; hands out stable references.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the instrument. The returned reference stays valid
  /// for the registry's lifetime. Requesting an existing key as a
  /// different kind throws.
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histo& histo(std::string_view name, const Labels& labels = {});

  /// Lookup without creation (nullptr when absent or of another kind).
  const Counter* find_counter(std::string_view key) const;
  const Gauge* find_gauge(std::string_view key) const;
  const Histo* find_histo(std::string_view key) const;

  std::size_t size() const { return entries_.size(); }

  /// Dumps every instrument as a single JSON object with "counters",
  /// "gauges", and "histos" sections, keys sorted. With `percentiles`
  /// an extra "percentiles" section summarises every histo as
  /// p50/p95/p99 (opt-in: the default bytes are a golden surface).
  void write_json(std::ostream& out, bool percentiles = false) const;

 private:
  enum class Kind { kCounter, kGauge, kHisto };
  struct Entry {
    std::string key;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histo> histo;
  };

  Entry& lookup(std::string_view name, const Labels& labels, Kind kind);
  const Entry* find(std::string_view key, Kind kind) const;

  std::vector<std::unique_ptr<Entry>> entries_;  // creation order
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace dope::obs
