// Flight recorder — incident capture for post-mortems.
//
// Operators reconstruct a DOPE incident *after the fact*: what did the
// 30 s before the breaker trip look like, who was on the slots, which
// alert fired first? The flight recorder answers that by snapshotting
// the observability state the moment an incident begins:
//
//   trigger:   breaker trip, BudgetViolation *onset* (not every slot of
//              a continuing violation), watchdog alert raise,
//              DOPE_AUDIT=FATAL failure, or an explicit
//              `--dump-incident-at` request;
//   snapshot:  every TimeSeriesStore ring (obs/timeseries.hpp), the
//              last-N trace events, the spans still open, and the
//              forensics top-K suspect ranking at that instant;
//   output:    one self-contained, schema-versioned *incident bundle*
//              JSON (docs/OBSERVABILITY.md) that `dopereport` turns
//              into a markdown post-mortem.
//
// Determinism: ids and timestamps derive from sim time and the run
// seed — never wall clock — so the same scenario produces a
// byte-identical bundle on every run and thread count. Triggers are
// deduplicated per management slot (two triggers in one slot produce
// one incident), and captures past `max_incidents` are counted and
// reported via an `IncidentTruncated` trailer, mirroring `--trace-cap`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace dope::obs {

struct FlightConfig {
  /// Incident bundles retained per run; further triggers are counted
  /// and surfaced through the IncidentTruncated trailer.
  std::size_t max_incidents = 8;
  /// Trace events snapshotted into each incident (the tail ending at
  /// the trigger).
  std::size_t trace_tail = 64;
  /// Open spans listed per incident (the full open count is always
  /// reported).
  std::size_t open_span_cap = 32;
  /// Suspect ranking depth in the forensics section.
  std::size_t forensics_top_k = 5;
  /// Trigger toggles.
  bool on_breaker_trip = true;
  bool on_budget_violation = true;
  bool on_alert_raised = true;
  bool on_audit_failure = true;
  /// SLO objective applied per URL class: a request breaches when its
  /// latency exceeds this or it did not complete.
  double slo_latency_ms = 250.0;
  /// Error budget (allowed breach fraction) the burn rate is measured
  /// against: burn 1.0 = breaching exactly at budget.
  double slo_error_budget = 0.01;
};

/// Identity of the run a bundle belongs to; serialized into the
/// envelope so a bundle is self-describing.
struct FlightRunContext {
  std::uint64_t seed = 0;
  std::string scheme;
  Time slot = 0;
  Time duration = 0;
  /// Free-form run label (sweep point label, fuzz case id, ...).
  std::string label;
};

/// Captures incident bundles from live obs state. Wired by `Hub`: the
/// hub installs it as the TraceRecorder listener so triggers fire no
/// matter which component recorded the event.
class FlightRecorder {
 public:
  /// `store` may be null (series section is empty), `spans` may be null
  /// (forensics/SLO sections are null). `trace` must outlive the
  /// recorder.
  FlightRecorder(FlightConfig config, const TimeSeriesStore* store,
                 const TraceRecorder* trace, const SpanTracer* spans);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_run_context(FlightRunContext context);
  /// URL classes Anti-DOPE flagged as suspects; cross-referenced in the
  /// forensics section ("suspicious": true on matching sources).
  void set_suspect_classes(std::vector<std::uint32_t> classes);

  /// TraceRecorder tap (see class comment).
  void on_trace_event(const TraceEvent& e);

  /// DOPE_AUDIT=FATAL path: called *before* the audit throws so the
  /// bundle exists when the process unwinds.
  void on_audit_failure(Time t, std::string_view check,
                        std::string_view message);

  /// Explicit operator trigger (`--dump-incident-at`).
  void dump_now(Time t, std::string_view reason);

  std::size_t incident_count() const { return incidents_.size(); }
  /// Triggers that began a new incident (captured or dropped over cap).
  std::uint64_t triggers() const { return triggers_; }
  /// Triggers folded into an existing same-slot incident.
  std::uint64_t deduped() const { return deduped_; }
  /// Incidents dropped over `max_incidents`.
  std::uint64_t dropped() const { return dropped_; }

  /// The bundle: schema envelope + run context + run-level SLO section
  /// + every captured incident (+ IncidentTruncated trailer when over
  /// cap).
  void write_json(std::ostream& out) const;

 private:
  void capture(Time t, const char* trigger, const std::string& detail,
               int zone);
  void write_slo_json(std::ostream& out) const;

  FlightConfig config_;
  const TimeSeriesStore* store_;
  const TraceRecorder* trace_;
  const SpanTracer* spans_;
  FlightRunContext context_;
  std::vector<std::uint32_t> suspect_classes_;
  /// Fully rendered incident JSON objects, in capture order. Rendered
  /// at trigger time — the rings keep moving afterwards.
  std::vector<std::string> incidents_;
  std::uint64_t triggers_ = 0;
  std::uint64_t deduped_ = 0;
  std::uint64_t dropped_ = 0;
  std::int64_t last_capture_slot_ = -1;
  /// Last slot with a BudgetViolation, per zone (-1 = standalone
  /// cluster): a violation in slot s+1 after one in slot s is a
  /// continuation, not a new onset. Lookup only — never iterated.
  std::unordered_map<int, std::int64_t> last_violation_slot_;
};

}  // namespace dope::obs
