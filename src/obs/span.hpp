// Request-lifecycle span tracing.
//
// A *span* is a timed interval in one request's life — the root request
// span plus child spans for the firewall verdict, the LB pick, time spent
// queued, and slot occupancy on a server. Spans form a two-level tree:
// every child points at its request's root span, so "which request, from
// which source, occupied which server slot during the violation at t?"
// is a join over `{span.server, span.slot, span.begin..end}`.
//
// Span ids are *stable*: `(request_id << 3) | stage`. Request ids are
// seed-derived (`(seed << 40) ^ serial`), so two runs of the same
// scenario produce identical span ids — diffable traces.
//
// Like the rest of the hub, the tracer only observes: recording a span
// never schedules an event, consumes randomness, or allocates on the
// simulation's hot path beyond the append itself. Call sites cache the
// `SpanTracer*` at construction and guard on null, so a run without
// spans does zero observability work and exports byte-identical results.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace dope::obs {

/// Lifecycle stage of a span; doubles as the low bits of its id.
enum class SpanKind : std::uint8_t {
  kRequest = 0,   // arrival -> terminal outcome (root)
  kFirewall = 1,  // perimeter verdict (instant)
  kLbPick = 2,    // load-balancer selection (instant)
  kQueue = 3,     // waiting in a server's FCFS queue
  kService = 4,   // occupying a server slot
};

inline constexpr std::size_t kSpanKindCount = 5;

const char* span_kind_name(SpanKind kind);

/// Deterministic span id: request id in the high bits, stage in the low
/// three. Any component can derive a request's root-span id locally.
inline std::uint64_t span_id_for(std::uint64_t request_id, SpanKind kind) {
  return (request_id << 3) | static_cast<std::uint64_t>(kind);
}

/// One span. `label` and `outcome` must be string literals (or otherwise
/// outlive the tracer), mirroring the TraceEvent key convention.
struct Span {
  std::uint64_t id = 0;
  /// Root-span id of the owning request; 0 for the root itself.
  std::uint64_t parent = 0;
  SpanKind kind = SpanKind::kRequest;
  Time begin = 0;
  /// -1 while the span is still open.
  Time end = -1;
  std::uint32_t source_id = 0;
  std::uint32_t url_class = 0;
  /// Power attributed to the span (service spans: the request's active
  /// power at admission level; 0 elsewhere).
  Watts power_w{0.0};
  /// Serving node (-1 when not tied to a server).
  int server = -1;
  /// Slot index on the server (-1 when not in service).
  int slot = -1;
  /// Zone the span was recorded in (-1 for a standalone cluster; set for
  /// every span inside a `site::Site`).
  int zone = -1;
  const char* label = "";
  const char* outcome = "";

  bool open() const { return end < 0; }
};

struct SpanConfig {
  /// Retention cap; spans past it are counted but not stored (exports
  /// embed the drop count — never silent).
  std::size_t max_spans = 2'000'000;
};

/// Append-only span log with begin/end pairing.
class SpanTracer {
 public:
  explicit SpanTracer(SpanConfig config = {});

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Opens a span (`span.end` is forced to -1). Dropped silently into
  /// the overflow counter once the cap is hit.
  void begin(Span span);

  /// Closes the open span `id` at `t`. Unknown ids (never begun, begun
  /// past the cap, or already closed) are counted and ignored.
  void end(std::uint64_t id, Time t, const char* outcome);

  /// Records an already-closed zero-duration span at `t` (verdicts).
  void instant(Span span, Time t);

  const std::vector<Span>& spans() const { return spans_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - spans_.size(); }
  /// Ends that matched no open span.
  std::uint64_t unmatched_ends() const { return unmatched_ends_; }
  std::size_t open_count() const { return open_.size(); }
  std::uint64_t count(SpanKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  std::size_t max_spans() const { return config_.max_spans; }
  void set_max_spans(std::size_t cap) { config_.max_spans = cap; }

  /// One `SpanBegin`/`SpanEnd` JSONL record pair per span, time-ordered
  /// (stand-alone export; `Hub::write_trace_jsonl` merges spans with the
  /// event trace instead).
  void write_jsonl(std::ostream& out) const;

 private:
  SpanConfig config_;
  std::vector<Span> spans_;
  /// Open-span lookup: id -> index into spans_. Lookup only — never
  /// iterated, so hash order cannot leak into any output.
  std::unordered_map<std::uint64_t, std::size_t> open_;
  std::uint64_t recorded_ = 0;
  std::uint64_t unmatched_ends_ = 0;
  std::array<std::uint64_t, kSpanKindCount> counts_{};
};

/// Writes one span as its JSONL `SpanBegin` record (no trailing newline
/// handling — callers append '\n').
void write_span_begin_jsonl(std::ostream& out, const Span& span);

/// Writes one span as its JSONL `SpanEnd` record. Only valid for closed
/// spans.
void write_span_end_jsonl(std::ostream& out, const Span& span);

}  // namespace dope::obs
