// Tiny JSON output helpers shared by the obs exporters. Writing only —
// the simulator never parses JSON.
#pragma once

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string_view>

namespace dope::obs {

/// Writes `s` as a JSON string literal (quotes included).
inline void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Writes a double as a JSON number (JSON has no inf/nan; emit null).
inline void write_json_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  // Round-trippable without drowning the file in digits.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out << buf;
}

}  // namespace dope::obs
