#include "obs/report.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "common/minijson.hpp"
#include "obs/json.hpp"

namespace dope::obs {

namespace {

using minijson::Value;
using minijson::as_i64;
using minijson::require;

constexpr std::int64_t kBundleVersion = 1;

double num_or(const Value& obj, const std::string& key, double fallback) {
  const Value* v = obj.find(key);
  if (v == nullptr || v->kind != Value::Kind::kNumber) return fallback;
  return minijson::as_double(*v, key);
}

std::int64_t i64_or(const Value& obj, const std::string& key,
                    std::int64_t fallback) {
  const Value* v = obj.find(key);
  if (v == nullptr || v->kind != Value::Kind::kNumber) return fallback;
  return as_i64(*v, key);
}

std::string str_or(const Value& obj, const std::string& key,
                   const std::string& fallback) {
  const Value* v = obj.find(key);
  if (v == nullptr || v->kind != Value::Kind::kString) return fallback;
  return v->text;
}

std::string format_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Inline unicode sparkline over `values`, scaled to their own range.
std::string sparkline(const std::vector<double>& values) {
  static const char* const kGlyphs[8] = {"▁", "▂", "▃", "▄",
                                         "▅", "▆", "▇", "█"};
  if (values.empty()) return "(empty)";
  double lo = values.front();
  double hi = values.front();
  for (const double v : values) {
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  const double span = hi - lo;
  std::string out;
  for (const double v : values) {
    std::size_t level = 3;  // flat series renders mid-height
    if (span > 0.0) {
      const double norm = (v - lo) / span;
      level = static_cast<std::size_t>(norm * 7.0 + 0.5);
      if (level > 7) level = 7;
    }
    out += kGlyphs[level];
  }
  return out;
}

/// Raw-ring tail of one series object, newest `cap` values.
std::vector<double> raw_tail(const Value& series, std::size_t cap) {
  std::vector<double> values;
  const Value* raw = series.find("raw");
  if (raw == nullptr || raw->kind != Value::Kind::kArray) return values;
  const std::size_t n = raw->items.size();
  const std::size_t start = n > cap ? n - cap : 0;
  for (std::size_t i = start; i < n; ++i) {
    values.push_back(num_or(raw->items[i], "v", 0.0));
  }
  return values;
}

/// Re-serializes a parsed JSON value (numbers pass through as their
/// original tokens), so the digest can embed bundle subtrees verbatim.
void write_value(std::ostream& out, const Value& v) {
  switch (v.kind) {
    case Value::Kind::kNull: out << "null"; return;
    case Value::Kind::kBool: out << (v.boolean ? "true" : "false"); return;
    case Value::Kind::kNumber: out << v.text; return;
    case Value::Kind::kString: write_json_string(out, v.text); return;
    case Value::Kind::kArray: {
      out << '[';
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i > 0) out << ", ";
        write_value(out, v.items[i]);
      }
      out << ']';
      return;
    }
    case Value::Kind::kObject: {
      out << '{';
      for (std::size_t i = 0; i < v.fields.size(); ++i) {
        if (i > 0) out << ", ";
        write_json_string(out, v.fields[i].first);
        out << ": ";
        write_value(out, v.fields[i].second);
      }
      out << '}';
      return;
    }
  }
}

const Value& parse_bundle(const std::string& bundle_json, Value* storage) {
  *storage = minijson::parse(bundle_json);
  const std::int64_t version = as_i64(
      require(*storage, "dope_incident_bundle"), "dope_incident_bundle");
  if (version != kBundleVersion) {
    throw std::runtime_error("report: unsupported bundle version " +
                             std::to_string(version));
  }
  return *storage;
}

bool is_truncation_trailer(const Value& incident) {
  return str_or(incident, "type", "") == "IncidentTruncated";
}

void write_run_header(std::ostream& out, const Value& root) {
  const Value& run = require(root, "run");
  out << "# DOPE incident post-mortem\n\n";
  out << "- scheme: `" << str_or(run, "scheme", "?") << "`, seed "
      << str_or(run, "seed", "?") << "\n";
  out << "- slot: " << format_num(i64_or(run, "slot_us", 0) / 1e6)
      << " s, duration: "
      << format_num(i64_or(run, "duration_us", 0) / 1e6) << " s\n";
  const std::string label = str_or(run, "label", "");
  if (!label.empty()) out << "- label: `" << label << "`\n";
  out << "- triggers: " << i64_or(root, "triggers", 0) << " ("
      << i64_or(root, "deduped", 0) << " deduped, "
      << i64_or(root, "dropped", 0) << " dropped over cap)\n\n";
}

void write_slo_section(std::ostream& out, const Value& root) {
  const Value* slo = root.find("slo");
  if (slo == nullptr || slo->kind != Value::Kind::kObject) return;
  out << "## SLO\n\n";
  out << "Latency objective "
      << format_num(num_or(*slo, "objective_ms", 0.0))
      << " ms per class, error budget "
      << format_num(num_or(*slo, "error_budget", 0.0) * 100.0) << " %.\n\n";
  out << "| url class | requests | completed | p50 ms | p95 ms "
         "| p99 ms | breaches | compliance | burn rate |\n";
  out << "|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  const Value* classes = slo->find("classes");
  if (classes != nullptr && classes->kind == Value::Kind::kArray) {
    for (const Value& c : classes->items) {
      const double burn = num_or(c, "burn_rate", 0.0);
      out << "| " << i64_or(c, "url_class", 0) << " | "
          << i64_or(c, "requests", 0) << " | "
          << i64_or(c, "completed", 0) << " | "
          << format_num(num_or(c, "p50_ms", 0.0)) << " | "
          << format_num(num_or(c, "p95_ms", 0.0)) << " | "
          << format_num(num_or(c, "p99_ms", 0.0)) << " | "
          << i64_or(c, "breaches", 0) << " | "
          << format_num(num_or(c, "compliance", 0.0)) << " | "
          << format_num(burn) << (burn > 1.0 ? " (OVER)" : "")
          << " |\n";
    }
  }
  out << "\n";
}

void write_signal_table(std::ostream& out, const Value& incident) {
  const Value* series = incident.find("series");
  if (series == nullptr || series->kind != Value::Kind::kObject ||
      series->fields.empty()) {
    return;
  }
  out << "### Pre-trigger signals\n\n";
  out << "| series | last | min | max | trend (raw tail) |\n";
  out << "|:--|---:|---:|---:|:--|\n";
  for (const auto& [name, s] : series->fields) {
    out << "| `" << name << "` | " << format_num(num_or(s, "last", 0.0))
        << " | " << format_num(num_or(s, "min", 0.0)) << " | "
        << format_num(num_or(s, "max", 0.0)) << " | "
        << sparkline(raw_tail(s, 40)) << " |\n";
  }
  out << "\n";
}

void write_blast_radius(std::ostream& out, const Value& incident) {
  const Value* series = incident.find("series");
  if (series == nullptr || series->kind != Value::Kind::kObject) return;
  // Zone-suffixed series ("cluster.demand_w.zone1") carry the per-zone
  // story; group them by suffix.
  std::map<long, std::vector<const std::pair<std::string, Value>*>> zones;
  for (const auto& field : series->fields) {
    const std::string& name = field.first;
    const std::size_t pos = name.rfind(".zone");
    if (pos == std::string::npos) continue;
    const std::string digits = name.substr(pos + 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    zones[std::stol(digits)].push_back(&field);
  }
  out << "### Blast radius\n\n";
  const long trigger_zone = i64_or(incident, "zone", -1);
  if (zones.empty()) {
    out << "Standalone cluster — no zone breakdown (trigger zone "
        << trigger_zone << ").\n\n";
    return;
  }
  out << "Trigger zone: " << trigger_zone << ".\n\n";
  out << "| zone | series | last | max |\n|---:|:--|---:|---:|\n";
  for (const auto& [zone, fields] : zones) {
    for (const auto* field : fields) {
      out << "| " << zone << (zone == trigger_zone ? " (trigger)" : "")
          << " | `" << field->first << "` | "
          << format_num(num_or(field->second, "last", 0.0)) << " | "
          << format_num(num_or(field->second, "max", 0.0)) << " |\n";
    }
  }
  out << "\n";
}

void write_timeline(std::ostream& out, const Value& incident) {
  const Value* tail = incident.find("trace_tail");
  if (tail == nullptr || tail->kind != Value::Kind::kArray ||
      tail->items.empty()) {
    return;
  }
  out << "### Timeline (last " << tail->items.size()
      << " trace events)\n\n";
  for (const Value& e : tail->items) {
    out << "- " << format_num(num_or(e, "t_s", 0.0)) << " s **"
        << str_or(e, "type", "?") << "** `" << str_or(e, "source", "?")
        << "`";
    // A couple of payload fields for orientation; the bundle keeps the
    // full records.
    std::size_t shown = 0;
    for (const auto& [key, value] : e.fields) {
      if (shown >= 3) break;
      if (key == "t_us" || key == "t_s" || key == "type" ||
          key == "source") {
        continue;
      }
      if (value.kind == Value::Kind::kNumber) {
        out << ' ' << key << '=' << value.text;
        ++shown;
      } else if (value.kind == Value::Kind::kString) {
        out << ' ' << key << "=\"" << value.text << '"';
        ++shown;
      }
    }
    out << "\n";
  }
  out << "\n";
}

void write_attribution(std::ostream& out, const Value& incident) {
  const Value* forensics = incident.find("forensics");
  if (forensics == nullptr ||
      forensics->kind != Value::Kind::kObject) {
    return;
  }
  out << "### Attack attribution\n\n";
  out << "Attributed energy "
      << format_num(num_or(*forensics, "total_joules", 0.0))
      << " J across the span log; "
      << i64_or(*forensics, "violation_events", 0)
      << " budget-violation instants.\n\n";
  const Value* suspects = forensics->find("suspects");
  if (suspects == nullptr || suspects->kind != Value::Kind::kArray ||
      suspects->items.empty()) {
    out << "No suspect ranking (no spans recorded).\n\n";
    return;
  }
  out << "| source | requests | joules | occupancy ms | violation "
         "overlaps | dominant class | suspicious |\n";
  out << "|---:|---:|---:|---:|---:|---:|:--|\n";
  for (const Value& s : suspects->items) {
    const Value* suspicious = s.find("suspicious");
    const bool flagged = suspicious != nullptr &&
                         suspicious->kind == Value::Kind::kBool &&
                         suspicious->boolean;
    out << "| " << i64_or(s, "source_id", 0) << " | "
        << i64_or(s, "requests", 0) << " | "
        << format_num(num_or(s, "joules", 0.0)) << " | "
        << format_num(num_or(s, "occupancy_ms", 0.0)) << " | "
        << i64_or(s, "violation_overlaps", 0) << " | "
        << i64_or(s, "dominant_class", 0) << " | "
        << (flagged ? "**yes**" : "no") << " |\n";
  }
  out << "\n";
}

void write_incident_markdown(std::ostream& out, const Value& incident) {
  out << "## Incident " << i64_or(incident, "id", 0) << " — "
      << str_or(incident, "trigger", "?") << " at t="
      << format_num(num_or(incident, "t_s", 0.0)) << " s (slot "
      << i64_or(incident, "slot_index", 0) << ")\n\n";
  const std::string detail = str_or(incident, "detail", "");
  if (!detail.empty()) out << "Detail: `" << detail << "`.\n";
  out << "Open spans at capture: "
      << i64_or(incident, "open_span_count", 0) << ".\n\n";
  write_signal_table(out, incident);
  write_timeline(out, incident);
  write_blast_radius(out, incident);
  write_attribution(out, incident);
}

}  // namespace

void write_postmortem_markdown(std::ostream& out,
                               const std::string& bundle_json) {
  Value storage;
  const Value& root = parse_bundle(bundle_json, &storage);
  write_run_header(out, root);
  write_slo_section(out, root);
  const Value& incidents = require(root, "incidents");
  if (incidents.items.empty()) {
    out << "## Incidents\n\nNone captured — the run completed without "
           "a trigger.\n";
    return;
  }
  for (const Value& incident : incidents.items) {
    if (is_truncation_trailer(incident)) {
      out << "## Incidents over cap\n\n"
          << i64_or(incident, "dropped", 0)
          << " further incident(s) were dropped over the per-run cap of "
          << i64_or(incident, "cap", 0) << ".\n";
      continue;
    }
    write_incident_markdown(out, incident);
  }
}

void write_postmortem_json(std::ostream& out,
                           const std::string& bundle_json) {
  Value storage;
  const Value& root = parse_bundle(bundle_json, &storage);
  out << "{\n  \"dope_postmortem\": 1,\n  \"run\": ";
  write_value(out, require(root, "run"));
  out << ",\n  \"triggers\": " << i64_or(root, "triggers", 0)
      << ", \"deduped\": " << i64_or(root, "deduped", 0)
      << ", \"dropped\": " << i64_or(root, "dropped", 0)
      << ",\n  \"slo\": ";
  const Value* slo = root.find("slo");
  if (slo != nullptr) {
    write_value(out, *slo);
  } else {
    out << "null";
  }
  out << ",\n  \"incidents\": [";
  const Value& incidents = require(root, "incidents");
  bool first = true;
  for (const Value& incident : incidents.items) {
    if (is_truncation_trailer(incident)) continue;
    if (!first) out << ',';
    first = false;
    out << "\n    {\"id\": " << i64_or(incident, "id", 0)
        << ", \"t_s\": " << format_num(num_or(incident, "t_s", 0.0))
        << ", \"slot_index\": " << i64_or(incident, "slot_index", 0)
        << ", \"trigger\": ";
    write_json_string(out, str_or(incident, "trigger", "?"));
    out << ", \"detail\": ";
    write_json_string(out, str_or(incident, "detail", ""));
    out << ", \"zone\": " << i64_or(incident, "zone", -1)
        << ", \"open_span_count\": "
        << i64_or(incident, "open_span_count", 0) << '}';
  }
  if (!first) out << "\n  ";
  out << "]\n}\n";
}

}  // namespace dope::obs
