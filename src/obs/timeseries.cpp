#include "obs/timeseries.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "obs/json.hpp"

namespace dope::obs {

Series::Series(std::string name, const TimeSeriesConfig& config)
    : name_(std::move(name)) {
  raw_.capacity = config.raw_capacity;
  tier1_.capacity = config.tier1_capacity;
  tier2_.capacity = config.tier2_capacity;
  raw_.buf.reserve(raw_.capacity);
  tier1_.buf.reserve(tier1_.capacity);
  tier2_.buf.reserve(tier2_.capacity);
}

void Series::fold(TierBucket& bucket, const RawSample& s) {
  if (bucket.count == 0) {
    bucket.first_index = s.index;
    bucket.first_t = s.t;
    bucket.min = bucket.max = s.value;
  } else {
    bucket.min = std::min(bucket.min, s.value);
    bucket.max = std::max(bucket.max, s.value);
  }
  bucket.last_t = s.t;
  bucket.sum += s.value;
  ++bucket.count;
}

void Series::sample(Time t, double value) {
  const RawSample s{total_, t, value};
  if (total_ == 0) {
    seen_min_ = seen_max_ = value;
  } else {
    seen_min_ = std::min(seen_min_, value);
    seen_max_ = std::max(seen_max_, value);
  }
  ++total_;
  total_sum_ += value;
  last_ = value;

  raw_.push(s);
  fold(tier1_accum_, s);
  if (tier1_accum_.count == kTier1FanIn) {
    tier1_.push(tier1_accum_);
    tier1_accum_ = TierBucket{};
  }
  fold(tier2_accum_, s);
  if (tier2_accum_.count == kTier2FanIn) {
    tier2_.push(tier2_accum_);
    tier2_accum_ = TierBucket{};
  }
}

std::vector<RawSample> Series::raw() const { return raw_.ordered(); }
std::vector<TierBucket> Series::tier1() const { return tier1_.ordered(); }
std::vector<TierBucket> Series::tier2() const { return tier2_.ordered(); }

namespace {

void write_tier_json(std::ostream& out, const char* title,
                     const std::vector<TierBucket>& buckets) {
  out << '"' << title << "\": [";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const TierBucket& b = buckets[i];
    if (i > 0) out << ", ";
    out << "{\"i\": " << b.first_index << ", \"n\": " << b.count
        << ", \"t0_us\": " << b.first_t << ", \"t1_us\": " << b.last_t
        << ", \"min\": ";
    write_json_number(out, b.min);
    out << ", \"mean\": ";
    write_json_number(out, b.mean());
    out << ", \"max\": ";
    write_json_number(out, b.max);
    out << '}';
  }
  out << ']';
}

}  // namespace

void Series::write_json(std::ostream& out) const {
  out << "{\"samples\": " << total_ << ", \"sum\": ";
  write_json_number(out, total_sum_);
  out << ", \"min\": ";
  write_json_number(out, seen_min());
  out << ", \"max\": ";
  write_json_number(out, seen_max());
  out << ", \"last\": ";
  write_json_number(out, total_ ? last_ : 0.0);
  out << ",\n      \"raw\": [";
  const std::vector<RawSample> raw_samples = raw();
  for (std::size_t i = 0; i < raw_samples.size(); ++i) {
    const RawSample& s = raw_samples[i];
    if (i > 0) out << ", ";
    out << "{\"i\": " << s.index << ", \"t_us\": " << s.t << ", \"v\": ";
    write_json_number(out, s.value);
    out << '}';
  }
  out << "],\n      ";
  write_tier_json(out, "tier10", tier1());
  out << ",\n      ";
  write_tier_json(out, "tier100", tier2());
  out << '}';
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesConfig config)
    : config_(config) {}

Series& TimeSeriesStore::series(std::string_view name) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) return *series_[it->second];
  index_.emplace(std::string(name), series_.size());
  series_.push_back(std::make_unique<Series>(std::string(name), config_));
  return *series_.back();
}

const Series* TimeSeriesStore::find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? nullptr : series_[it->second].get();
}

void TimeSeriesStore::write_json(std::ostream& out) const {
  // Sorted-name order, not creation order: the bytes written must not
  // depend on which component bound first.
  std::vector<const Series*> sorted;
  sorted.reserve(series_.size());
  for (const auto& s : series_) sorted.push_back(s.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const Series* a, const Series* b) {
              return a->name() < b->name();
            });
  out << "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out << ',';
    out << "\n    ";
    write_json_string(out, sorted[i]->name());
    out << ": ";
    sorted[i]->write_json(out);
  }
  if (!sorted.empty()) out << "\n  ";
  out << '}';
}

}  // namespace dope::obs
