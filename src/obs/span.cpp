#include "obs/span.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "obs/json.hpp"

namespace dope::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kFirewall: return "firewall";
    case SpanKind::kLbPick: return "lb_pick";
    case SpanKind::kQueue: return "queue";
    case SpanKind::kService: return "service";
  }
  return "?";
}

SpanTracer::SpanTracer(SpanConfig config) : config_(config) {}

void SpanTracer::begin(Span span) {
  ++recorded_;
  ++counts_[static_cast<std::size_t>(span.kind)];
  if (spans_.size() >= config_.max_spans) return;
  span.end = -1;
  open_[span.id] = spans_.size();
  spans_.push_back(span);
}

void SpanTracer::end(std::uint64_t id, Time t, const char* outcome) {
  const auto it = open_.find(id);
  if (it == open_.end()) {
    ++unmatched_ends_;
    return;
  }
  Span& span = spans_[it->second];
  span.end = t;
  span.outcome = outcome;
  open_.erase(it);
}

void SpanTracer::instant(Span span, Time t) {
  ++recorded_;
  ++counts_[static_cast<std::size_t>(span.kind)];
  if (spans_.size() >= config_.max_spans) return;
  span.begin = t;
  span.end = t;
  spans_.push_back(span);
}

void write_span_begin_jsonl(std::ostream& out, const Span& span) {
  out << "{\"t_us\": " << span.begin << ", \"t_s\": ";
  write_json_number(out, to_seconds(span.begin));
  out << ", \"type\": \"SpanBegin\", \"source\": \"span\", \"span_id\": "
      << span.id << ", \"parent\": " << span.parent << ", \"kind\": ";
  write_json_string(out, span_kind_name(span.kind));
  out << ", \"source_id\": " << span.source_id
      << ", \"url_class\": " << span.url_class;
  if (span.server >= 0) out << ", \"server\": " << span.server;
  if (span.slot >= 0) out << ", \"slot\": " << span.slot;
  if (span.zone >= 0) out << ", \"zone\": " << span.zone;
  if (span.power_w > Watts{0.0}) {
    out << ", \"power_w\": ";
    write_json_number(out, span.power_w.value());
  }
  if (span.label[0] != '\0') {
    out << ", \"label\": ";
    write_json_string(out, span.label);
  }
  out << "}";
}

void write_span_end_jsonl(std::ostream& out, const Span& span) {
  out << "{\"t_us\": " << span.end << ", \"t_s\": ";
  write_json_number(out, to_seconds(span.end));
  out << ", \"type\": \"SpanEnd\", \"source\": \"span\", \"span_id\": "
      << span.id << ", \"kind\": ";
  write_json_string(out, span_kind_name(span.kind));
  out << ", \"outcome\": ";
  write_json_string(out, span.outcome);
  out << "}";
}

void SpanTracer::write_jsonl(std::ostream& out) const {
  // Begins are recorded in time order; ends are not (a long span closes
  // after later short ones), so sort the closed ends and merge the two
  // streams, keeping t_us monotone. At equal t, begins precede ends.
  std::vector<std::pair<Time, const Span*>> ends;
  ends.reserve(spans_.size());
  for (const Span& span : spans_) {
    if (!span.open()) ends.emplace_back(span.end, &span);
  }
  std::stable_sort(
      ends.begin(), ends.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t e = 0;
  for (const Span& span : spans_) {
    while (e < ends.size() && ends[e].first < span.begin) {
      write_span_end_jsonl(out, *ends[e++].second);
      out << "\n";
    }
    write_span_begin_jsonl(out, span);
    out << "\n";
  }
  while (e < ends.size()) {
    write_span_end_jsonl(out, *ends[e++].second);
    out << "\n";
  }
  if (dropped() > 0) {
    out << "{\"type\": \"SpanTruncated\", \"dropped\": " << dropped()
        << ", \"cap\": " << config_.max_spans << "}\n";
  }
}

}  // namespace dope::obs
