// The observability hub: one object bundling the pillars — metrics
// registry, trace recorder, alert watchdog, and (opt-in) request span
// tracer — wired together (watchdog alerts land in the trace; spans and
// events merge into one export).
//
// Ownership/threading model: create one `Hub` per simulation run and
// attach it to that run's `sim::Engine` (`engine.set_obs(&hub)`) *before*
// constructing components, which cache their instruments at construction.
// A null hub (the default) is the null sink: every instrumented call
// site guards on the pointer, so a run without a hub performs no
// observability work and no allocation. Span tracing is additionally
// opt-in per hub (`HubConfig::enable_spans`): call sites cache
// `hub->spans()` — null when disabled — so a hub without spans records
// exactly what it did before spans existed. A Hub must not be shared by
// concurrently running scenarios — instruments are deliberately
// lock-free plain stores.
//
// Thread-safety analysis (common/thread_annotations.hpp): the Hub
// carries no capability annotations because it owns no locks — its
// contract is single-owner-per-run. The one place a Hub is touched from
// multiple threads, the sweep worker pool, routes every instrument
// access through sweep.cpp's ProgressBoard, whose PT_GUARDED_BY members
// make the clang -Wthread-safety lane prove the serialization.
#pragma once

#include <iosfwd>
#include <memory>
#include <string_view>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace dope::obs {

struct HubConfig {
  TraceConfig trace{};
  /// Request-lifecycle span tracing; off by default (spans are the one
  /// pillar with per-request cost even when nobody exports them).
  bool enable_spans = false;
  SpanConfig spans{};
  /// Per-slot time-series rings; off by default (per-slot cost).
  bool enable_timeseries = false;
  TimeSeriesConfig timeseries{};
  /// Flight recorder (incident bundles); off by default. Usually
  /// enabled together with timeseries + spans so bundles carry the
  /// pre-trigger history and attribution sections.
  bool enable_flight = false;
  FlightConfig flight{};
};

class Hub {
 public:
  explicit Hub(HubConfig config = {})
      : trace_(config.trace), watchdog_(&trace_) {
    if (config.enable_spans) {
      spans_ = std::make_unique<SpanTracer>(config.spans);
    }
    if (config.enable_timeseries) {
      timeseries_ = std::make_unique<TimeSeriesStore>(config.timeseries);
    }
    if (config.enable_flight) {
      flight_ = std::make_unique<FlightRecorder>(
          config.flight, timeseries_.get(), &trace_, spans_.get());
      // Tap the recorder, not Hub::event: the watchdog (and anything
      // else holding a TraceRecorder*) records directly, and triggers
      // must fire for those events too.
      trace_.set_listener(
          [this](const TraceEvent& e) { flight_->on_trace_event(e); });
    }
  }

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }
  Watchdog& watchdog() { return watchdog_; }
  const Watchdog& watchdog() const { return watchdog_; }
  /// Null when span tracing is disabled — cache and guard, like the hub
  /// pointer itself.
  SpanTracer* spans() { return spans_.get(); }
  const SpanTracer* spans() const { return spans_.get(); }
  /// Null when time-series recording is disabled — cache and guard.
  TimeSeriesStore* timeseries() { return timeseries_.get(); }
  const TimeSeriesStore* timeseries() const { return timeseries_.get(); }
  /// Null when the flight recorder is disabled.
  FlightRecorder* flight() { return flight_.get(); }
  const FlightRecorder* flight() const { return flight_.get(); }

  /// Shorthand for trace().record(...).
  void event(TraceEvent e) { trace_.record(std::move(e)); }

  /// DOPE_AUDIT failure hook (common/audit.hpp calls this *before* the
  /// fatal throw): snapshots an incident bundle so the post-mortem
  /// exists when the process unwinds. No-op without a flight recorder.
  void audit_failure(Time t, std::string_view check,
                     std::string_view message) {
    if (flight_) flight_->on_audit_failure(t, check, message);
  }

  /// JSONL export of the whole hub: the event trace, merged (in time
  /// order) with SpanBegin/SpanEnd records when spans are enabled.
  /// Byte-identical to `trace().write_jsonl` when they are not.
  void write_trace_jsonl(std::ostream& out) const;

  /// Chrome trace_event export: the instant-event rows, plus — when
  /// spans are enabled — duration (B/E) pairs on one track per
  /// (server, slot) and async request/queue spans. Byte-identical to
  /// `trace().write_chrome_trace` when spans are disabled.
  void write_chrome_trace(std::ostream& out) const;

 private:
  Registry registry_;
  TraceRecorder trace_;
  Watchdog watchdog_;
  std::unique_ptr<SpanTracer> spans_;
  std::unique_ptr<TimeSeriesStore> timeseries_;
  std::unique_ptr<FlightRecorder> flight_;
};

}  // namespace dope::obs
