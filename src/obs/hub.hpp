// The observability hub: one object bundling the three pillars —
// metrics registry, trace recorder, and alert watchdog — wired together
// (watchdog alerts land in the trace).
//
// Ownership/threading model: create one `Hub` per simulation run and
// attach it to that run's `sim::Engine` (`engine.set_obs(&hub)`) *before*
// constructing components, which cache their instruments at construction.
// A null hub (the default) is the null sink: every instrumented call
// site guards on the pointer, so a run without a hub performs no
// observability work and no allocation. A Hub must not be shared by
// concurrently running scenarios — instruments are deliberately
// lock-free plain stores.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace dope::obs {

struct HubConfig {
  TraceConfig trace{};
};

class Hub {
 public:
  explicit Hub(HubConfig config = {})
      : trace_(config.trace), watchdog_(&trace_) {}

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }
  Watchdog& watchdog() { return watchdog_; }
  const Watchdog& watchdog() const { return watchdog_; }

  /// Shorthand for trace().record(...).
  void event(TraceEvent e) { trace_.record(std::move(e)); }

 private:
  Registry registry_;
  TraceRecorder trace_;
  Watchdog watchdog_;
};

}  // namespace dope::obs
