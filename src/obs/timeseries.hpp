// Per-slot time-series store — the flight recorder's black-box memory.
//
// Metrics snapshots (obs/metrics.hpp) answer "what were the totals";
// they cannot answer "what did the 30 s before the breaker trip look
// like". The store keeps that history in fixed memory: every signal a
// component feeds per management slot (power draw, budget, headroom,
// battery SoC, queue depth, firewall bans, attack rate, ...) lands in a
// ring of raw samples plus two tiers of downsampled aggregates —
//
//   raw      last `raw_capacity` samples, full resolution
//   tier10   min/mean/max over every 10 raw samples
//   tier100  min/mean/max over every 100 raw samples
//
// — so an arbitrarily long run fits a bounded footprint while recent
// history stays slot-exact and older history degrades gracefully.
//
// Like every obs pillar, the store only observes: feeding it never
// schedules an event, consumes randomness, or branches simulation
// logic. Components cache `Series*` handles at bind time and guard on
// null, so a run without a store does zero work and stays
// byte-identical on every export surface.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace dope::obs {

/// Raw samples folded into one tier-1 / tier-2 aggregate bucket.
inline constexpr std::size_t kTier1FanIn = 10;
inline constexpr std::size_t kTier2FanIn = 100;

struct TimeSeriesConfig {
  /// Raw ring length, in samples (slots). 600 one-second slots = ten
  /// minutes of full-resolution history.
  std::size_t raw_capacity = 600;
  /// Tier-1 ring length, in buckets of kTier1FanIn raw samples.
  std::size_t tier1_capacity = 360;
  /// Tier-2 ring length, in buckets of kTier2FanIn raw samples.
  std::size_t tier2_capacity = 360;
};

/// One full-resolution sample. `index` is the sample's position in the
/// series since the start of the run (monotone, survives ring
/// eviction), so exports stay globally ordered.
struct RawSample {
  std::uint64_t index = 0;
  Time t = 0;
  double value = 0.0;
};

/// One downsampled bucket: min/mean/max over `count` raw samples
/// starting at raw index `first_index`.
struct TierBucket {
  std::uint64_t first_index = 0;
  std::uint64_t count = 0;
  Time first_t = 0;
  Time last_t = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;

  double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

/// One named signal: a raw ring plus the two aggregate tiers and
/// whole-run running totals (which outlive ring eviction — the energy
/// reconciliation in incident bundles depends on them).
class Series {
 public:
  Series(std::string name, const TimeSeriesConfig& config);

  Series(const Series&) = delete;
  Series& operator=(const Series&) = delete;

  const std::string& name() const { return name_; }

  /// Appends one per-slot sample. O(1), no allocation once the rings
  /// are warm.
  void sample(Time t, double value);

  /// Samples ever fed (eviction does not decrease this).
  std::uint64_t total_samples() const { return total_; }
  double total_sum() const { return total_sum_; }
  double seen_min() const { return total_ ? seen_min_ : 0.0; }
  double seen_max() const { return total_ ? seen_max_ : 0.0; }
  double last_value() const { return last_; }

  /// Ring contents, oldest first (copies — the rings are circular).
  std::vector<RawSample> raw() const;
  std::vector<TierBucket> tier1() const;
  std::vector<TierBucket> tier2() const;

  /// {"samples":…, "sum":…, …, "raw":[…], "tier10":[…], "tier100":[…]}.
  void write_json(std::ostream& out) const;

 private:
  template <typename T>
  struct Ring {
    std::vector<T> buf;
    std::size_t capacity = 0;
    std::size_t head = 0;  // index of the oldest element once full

    void push(const T& item) {
      // dope-lint: allow(float-eq) — ring slot count, an integer, not
      // a battery capacity measurement.
      if (capacity == 0) return;
      if (buf.size() < capacity) {
        buf.push_back(item);
      } else {
        buf[head] = item;
        head = (head + 1) % capacity;
      }
    }
    std::vector<T> ordered() const {
      std::vector<T> out;
      out.reserve(buf.size());
      for (std::size_t k = 0; k < buf.size(); ++k) {
        out.push_back(buf[(head + k) % buf.size()]);
      }
      return out;
    }
  };

  static void fold(TierBucket& bucket, const RawSample& s);

  std::string name_;
  Ring<RawSample> raw_;
  Ring<TierBucket> tier1_;
  Ring<TierBucket> tier2_;
  TierBucket tier1_accum_;
  TierBucket tier2_accum_;
  std::uint64_t total_ = 0;
  double total_sum_ = 0.0;
  double seen_min_ = 0.0;
  double seen_max_ = 0.0;
  double last_ = 0.0;
};

/// Owner of all series; hands out stable references, mirroring
/// `Registry`.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesConfig config = {});

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Finds or creates a series. The returned reference stays valid for
  /// the store's lifetime — callers cache it at bind time.
  Series& series(std::string_view name);

  /// Lookup without creation.
  const Series* find(std::string_view name) const;

  std::size_t size() const { return series_.size(); }

  /// One object keyed by series name, in sorted-name order (the bytes
  /// must not depend on which component registered first).
  void write_json(std::ostream& out) const;

 private:
  TimeSeriesConfig config_;
  std::vector<std::unique_ptr<Series>> series_;  // creation order
  /// Name -> index. Lookup only — never iterated, so hash order cannot
  /// leak into any output.
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace dope::obs
