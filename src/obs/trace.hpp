// Structured event tracing.
//
// Components feed typed events ("a budget violation at t", "the DPM chose
// this throttling config") instead of printf lines, and the recorder
// exports the run as either JSONL (one event object per line, for jq/
// pandas) or the Chrome `trace_event` format, which chrome://tracing and
// Perfetto open directly — each emitting component becomes its own
// timeline row.
//
// Recording only *observes* simulator state: no RNG, no engine
// scheduling, so a run traced and untraced is byte-identical. Payload
// *keys* and the `source` string must be string literals (or otherwise
// outlive the recorder); payload values are owned.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace dope::obs {

/// Every structured event the simulator can emit.
enum class EventType {
  kRequestForwarded,  // edge accepted a request and picked a backend
  kRequestDropped,    // edge rejected a request (payload: reason)
  kBudgetViolation,   // slot demand exceeded the facility budget
  kLevelViolation,    // a power-tree level (PDU/facility) over rating
  kThrottleApplied,   // a scheme changed DVFS targets
  kBatteryDischarge,  // battery began / continued covering a deficit
  kBatteryCharge,     // battery drew headroom to recharge
  kBreakerTrip,       // utility-feed breaker opened (outage begins)
  kOutageEnd,         // power restored, servers rebooting
  kFirewallBan,       // perimeter firewall banned a source
  kAttackPhase,       // adaptive attacker changed phase (burst on/off)
  kAlertRaised,       // watchdog rule started firing
  kAlertCleared,      // watchdog rule recovered
};

inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kAlertCleared) + 1;

const char* event_type_name(EventType type);

/// One timestamped, typed event with a small structured payload.
struct TraceEvent {
  Time t = 0;
  EventType type = EventType::kRequestForwarded;
  /// Emitting component ("cluster", "firewall", "dpm", ...). Must be a
  /// string literal.
  const char* source = "";
  /// Numeric payload; keys must be string literals. JSONL inlines
  /// payload fields next to the envelope, so the keys "t_us", "t_s",
  /// "type" and "source" are reserved.
  std::vector<std::pair<const char*, double>> num;
  /// String payload; keys must be string literals, values are owned.
  std::vector<std::pair<const char*, std::string>> str;
};

struct TraceConfig {
  /// Retention cap; events past it are counted in `dropped()` but not
  /// stored (never silently — exports embed the drop count).
  std::size_t max_events = 2'000'000;
};

/// Append-only in-memory event log with JSONL / Chrome exports.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void record(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - events_.size(); }
  /// Events of one type seen so far (dropped ones included).
  std::uint64_t count(EventType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }
  /// Current retention cap.
  std::size_t max_events() const { return config_.max_events; }
  /// Adjusts the retention cap. Applies to future records only: already
  /// stored events are kept even when the cap shrinks below them.
  void set_max_events(std::size_t cap) { config_.max_events = cap; }
  /// Number of distinct event types seen so far.
  std::size_t distinct_types() const;

  /// Installs a tap invoked for every `record()` call — including
  /// events past the retention cap — after the event is counted and
  /// (when retained) stored. This is how the flight recorder triggers
  /// on breaker trips and alert raises regardless of which component
  /// emitted them (the watchdog records directly, bypassing
  /// `Hub::event`). One listener; an empty function clears it. The
  /// listener must not call back into `record()`.
  void set_listener(std::function<void(const TraceEvent&)> listener) {
    listener_ = std::move(listener);
  }

  /// One JSON object per line: {"t_us":..,"t_s":..,"type":"..",
  /// "source":"..", payload fields inlined}.
  void write_jsonl(std::ostream& out) const;

  /// Chrome trace_event JSON: instant events on one row per source, with
  /// thread-name metadata so Perfetto labels the rows.
  void write_chrome_trace(std::ostream& out) const;

  /// Writes the body of `write_chrome_trace` — the comma-separated event
  /// objects without the surrounding envelope — so `Hub` can append span
  /// tracks into the same traceEvents array. `first` tracks whether a
  /// separating comma is needed and is updated.
  void write_chrome_body(std::ostream& out, bool& first) const;

 private:
  TraceConfig config_;
  std::vector<TraceEvent> events_;
  std::uint64_t recorded_ = 0;
  std::array<std::uint64_t, kEventTypeCount> counts_{};
  std::function<void(const TraceEvent&)> listener_;
};

/// Writes one event as its JSONL object (no trailing newline). Shared by
/// `TraceRecorder::write_jsonl` and the hub's merged span+event export.
void write_jsonl_event(std::ostream& out, const TraceEvent& e);

}  // namespace dope::obs
