#include "obs/watchdog.hpp"

#include "common/expect.hpp"

namespace dope::obs {

void Watchdog::add_rule(AlertRule rule) {
  DOPE_REQUIRE(!rule.name.empty(), "alert rule needs a name");
  DOPE_REQUIRE(!rule.signal.empty(), "alert rule needs a signal");
  if (raise_override_ > 0) rule.consecutive = raise_override_;
  if (clear_override_ > 0) rule.clear_after = clear_override_;
  DOPE_REQUIRE(rule.consecutive >= 1, "need at least one window to raise");
  DOPE_REQUIRE(rule.clear_after >= 1, "need at least one window to clear");
  rules_.push_back(rule);
  states_.push_back(RuleState{std::move(rule), 0, 0, -1});
}

void Watchdog::observe(std::string_view signal, Time t, double value) {
  for (auto& state : states_) {
    if (state.rule.signal == signal) evaluate(state, t, value);
  }
}

void Watchdog::evaluate(RuleState& state, Time t, double value) {
  const bool breached = state.rule.cmp == AlertCmp::kAbove
                            ? value > state.rule.threshold
                            : value < state.rule.threshold;
  if (breached) {
    ++state.breach_streak;
    state.clean_streak = 0;
    if (state.open < 0 && state.breach_streak >= state.rule.consecutive) {
      state.open = static_cast<long>(alerts_.size());
      alerts_.push_back(
          Alert{state.rule.name, state.rule.signal, t, -1, value});
      if (trace_ != nullptr) {
        TraceEvent e;
        e.t = t;
        e.type = EventType::kAlertRaised;
        e.source = "watchdog";
        e.num.emplace_back("value", value);
        e.num.emplace_back("threshold", state.rule.threshold);
        e.num.emplace_back("windows", state.breach_streak);
        e.str.emplace_back("rule", state.rule.name);
        e.str.emplace_back("signal", state.rule.signal);
        trace_->record(std::move(e));
      }
    }
  } else {
    ++state.clean_streak;
    state.breach_streak = 0;
    if (state.open >= 0 && state.clean_streak >= state.rule.clear_after) {
      alerts_[static_cast<std::size_t>(state.open)].cleared_at = t;
      state.open = -1;
      if (trace_ != nullptr) {
        TraceEvent e;
        e.t = t;
        e.type = EventType::kAlertCleared;
        e.source = "watchdog";
        e.num.emplace_back("value", value);
        e.str.emplace_back("rule", state.rule.name);
        trace_->record(std::move(e));
      }
    }
  }
}

std::size_t Watchdog::active_count() const {
  std::size_t n = 0;
  for (const auto& state : states_) {
    if (state.open >= 0) ++n;
  }
  return n;
}

bool Watchdog::is_firing(std::string_view rule) const {
  for (const auto& state : states_) {
    if (state.rule.name == rule && state.open >= 0) return true;
  }
  return false;
}

}  // namespace dope::obs
