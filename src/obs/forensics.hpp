// Per-source attack forensics.
//
// Rolls the span log up into per-source aggregates — the attribution the
// paper's Figures 9–12 reason about: how many requests each source sent,
// how many joules its requests drew on server slots, how long it occupied
// them, and how often its slot occupancy coincided with a recorded
// `BudgetViolation` instant. Sorting by attributed joules yields a
// suspect ranking that can be cross-checked against Anti-DOPE's own
// URL-class suspect list: a real DOPE botnet's top sources all carry a
// suspicious dominant URL class.
//
// Built after the run from an attached `SpanTracer` + `TraceRecorder`;
// never touches the simulation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/units.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace dope::obs {

/// Aggregates for one traffic source (client IP).
struct SourceStats {
  std::uint32_t source_id = 0;
  /// Root request spans observed.
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  /// Energy attributed to this source's service spans (power at
  /// admission x slot occupancy).
  Joules joules{0.0};
  /// Total server-slot occupancy (milliseconds).
  double occupancy_ms = 0.0;
  /// BudgetViolation instants that fell inside a service span of this
  /// source — the "who was on the slot during the violation" join.
  std::uint64_t violation_overlaps = 0;
  /// URL class carrying the most attributed joules (most requests when
  /// the source never reached a slot); ties break to the lower class id.
  std::uint32_t dominant_class = 0;
  /// Zone whose service spans carry the most of this source's joules;
  /// -1 when the source never reached a slot or the run was a
  /// standalone (zone-less) cluster. Inside a Site this is the "which
  /// zone is the botnet hammering" attribution.
  std::int32_t dominant_zone = -1;
};

/// Per-source rollup over one run's spans.
class Forensics {
 public:
  /// Aggregates `spans` against `trace`'s BudgetViolation instants. Open
  /// spans are clamped to `horizon` (the run duration); a negative
  /// horizon clamps to the latest time observed in the span log.
  static Forensics build(const SpanTracer& spans, const TraceRecorder& trace,
                         Time horizon = -1);

  /// All sources, ordered by source id.
  const std::vector<SourceStats>& sources() const { return sources_; }
  /// Top `k` sources by attributed joules (ties: lower source id first).
  std::vector<SourceStats> top_by_joules(std::size_t k) const;
  /// Sum of per-source attributed joules.
  Joules total_joules() const { return total_joules_; }
  /// BudgetViolation instants seen in the trace.
  std::uint64_t violation_events() const { return violation_events_; }

  /// {"total_joules":…, "violation_events":…, "ranking":[…]} with the
  /// ranking ordered by joules descending (deterministic tie-break).
  void write_json(std::ostream& out) const;

 private:
  std::vector<SourceStats> sources_;
  Joules total_joules_{0.0};
  std::uint64_t violation_events_ = 0;
};

}  // namespace dope::obs
