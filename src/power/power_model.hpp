// Server power models.
//
// A server's electrical power is the sum of a frequency-dependent idle
// floor and one active-power term per in-flight request, clamped to the
// nameplate rating:
//
//   P(f) = P_idle(f) + Σ_active p(type_i, f),          P <= nameplate
//   P_idle(f) = idle_base + idle_dyn · (f/f_max)^3
//   p(type, f) = p0 · (beta · (f/f_max)^3 + (1 - beta))
//
// `beta` is the *frequency sensitivity* of a request type's power: compute-
// bound work (Colla-Filt) has high beta — DVFS bites hard; memory/disk-bound
// work (K-means, Word-Count) has low beta — power barely drops with f, so
// capping such requests needs much deeper frequency cuts (paper Fig. 6b).
#pragma once

#include "common/units.hpp"
#include "power/dvfs.hpp"

namespace dope::power {

/// Per-request-type active power parameters.
struct RequestPowerProfile {
  /// Active power contribution of one in-flight request at f_max (watts).
  Watts p0{0.0};
  /// Fraction of p0 that scales with (f/f_max)^3; in [0, 1].
  double freq_sensitivity = 1.0;
};

/// Active power of one request at normalised frequency `rel = f/f_max`.
Watts active_power(const RequestPowerProfile& profile, double rel);

/// Whole-server static parameters.
struct ServerPowerSpec {
  /// Nameplate (faceplate) rating; the paper's leaf node is 100 W.
  Watts nameplate{100.0};
  /// Idle power floor independent of frequency.
  Watts idle_base{30.0};
  /// Idle power that scales with (f/f_max)^3 (uncore/clock tree).
  Watts idle_dyn{8.0};
  /// Number of request slots served concurrently (cores/workers).
  unsigned cores = 4;
  /// Power drawn while parked in a PowerNap-style deep sleep state.
  Watts sleep_power{4.0};
};

/// Evaluates server power laws for a given spec + ladder.
///
/// Holds the ladder by value, so temporaries may safely be passed in.
class ServerPowerModel {
 public:
  ServerPowerModel(ServerPowerSpec spec, DvfsLadder ladder);

  const ServerPowerSpec& spec() const { return spec_; }
  const DvfsLadder& ladder() const { return ladder_; }

  /// Idle power at a DVFS level.
  Watts idle_power(DvfsLevel level) const;

  /// Active power of one request of the given profile at `level`.
  Watts request_power(const RequestPowerProfile& profile,
                      DvfsLevel level) const;

  /// Clamps a raw power sum to the nameplate rating.
  Watts clamp(Watts p) const;

  /// Peak power if every core runs the given profile at `level`.
  Watts saturated_power(const RequestPowerProfile& profile,
                        DvfsLevel level) const;

 private:
  ServerPowerSpec spec_;
  DvfsLadder ladder_;
};

}  // namespace dope::power
