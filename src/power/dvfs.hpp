// DVFS (dynamic voltage and frequency scaling) ladder.
//
// Mirrors the paper's testbed: ACPI P-states from 1.2 GHz to 2.4 GHz in
// 0.1 GHz steps. A `DvfsLadder` is an ordered list of operating points;
// levels are indices into it (0 = slowest). Servers hold a current level
// and power/performance models are evaluated at the level's frequency.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace dope::power {

/// Index into a DvfsLadder; 0 is the lowest frequency.
using DvfsLevel = std::size_t;

/// Ordered set of CPU operating frequencies.
class DvfsLadder {
 public:
  /// Builds a ladder spanning [min_ghz, max_ghz] at `step_ghz` increments.
  /// The paper's testbed ladder is the default: 1.2–2.4 GHz, 0.1 steps.
  static DvfsLadder make(GHz min_ghz = GHz{1.2}, GHz max_ghz = GHz{2.4},
                         GHz step_ghz = GHz{0.1});

  /// Builds a ladder from an explicit ascending frequency list.
  explicit DvfsLadder(std::vector<GHz> freqs);

  std::size_t levels() const { return freqs_.size(); }
  DvfsLevel min_level() const { return 0; }
  DvfsLevel max_level() const { return freqs_.size() - 1; }

  GHz frequency(DvfsLevel level) const;
  GHz min_frequency() const { return freqs_.front(); }
  GHz max_frequency() const { return freqs_.back(); }

  /// Highest level whose frequency is <= `f`; clamps to the extremes.
  DvfsLevel level_for(GHz f) const;

  /// Normalised frequency f/f_max in (0, 1].
  double relative(DvfsLevel level) const {
    return frequency(level) / max_frequency();
  }

  /// Clamps an arbitrary signed level delta into the valid range.
  DvfsLevel clamped(std::ptrdiff_t level) const;

 private:
  std::vector<GHz> freqs_;
};

}  // namespace dope::power
