#include "power/provisioning.hpp"

#include "common/expect.hpp"

namespace dope::power {

double budget_fraction(BudgetLevel level) {
  switch (level) {
    case BudgetLevel::kNormal: return 1.00;
    case BudgetLevel::kHigh: return 0.90;
    case BudgetLevel::kMedium: return 0.85;
    case BudgetLevel::kLow: return 0.80;
  }
  return 1.0;
}

std::string budget_name(BudgetLevel level) {
  switch (level) {
    case BudgetLevel::kNormal: return "Normal-PB";
    case BudgetLevel::kHigh: return "High-PB";
    case BudgetLevel::kMedium: return "Medium-PB";
    case BudgetLevel::kLow: return "Low-PB";
  }
  return "?";
}

PowerBudget PowerBudget::for_level(BudgetLevel level, Watts total_nameplate) {
  DOPE_REQUIRE(total_nameplate > Watts{0.0}, "nameplate must be positive");
  return PowerBudget{budget_fraction(level) * total_nameplate};
}

}  // namespace dope::power
