// Power provisioning (oversubscription) levels.
//
// The paper evaluates four supply scenarios, expressed as a fraction of the
// aggregate nameplate power of the cluster:
//   Normal-PB = 100 %, High-PB = 90 %, Medium-PB = 85 %, Low-PB = 80 %.
// Anything below Normal-PB is an *oversubscribed* design — the facility
// cannot supply every server at nameplate simultaneously.
#pragma once

#include <string>

#include "common/units.hpp"

namespace dope::power {

/// The four provisioning scenarios from the paper (Section 3.3).
enum class BudgetLevel { kNormal, kHigh, kMedium, kLow };

/// Fraction of aggregate nameplate supplied at each level.
double budget_fraction(BudgetLevel level);

/// Human-readable name matching the paper ("Normal-PB", ...).
std::string budget_name(BudgetLevel level);

/// All four levels in the paper's presentation order.
inline constexpr BudgetLevel kAllBudgetLevels[] = {
    BudgetLevel::kNormal, BudgetLevel::kHigh, BudgetLevel::kMedium,
    BudgetLevel::kLow};

/// A concrete facility power budget.
struct PowerBudget {
  /// Total power the facility can supply (watts).
  Watts supply{0.0};

  /// Builds a budget for `level` over a cluster with the given aggregate
  /// nameplate rating.
  static PowerBudget for_level(BudgetLevel level, Watts total_nameplate);
};

}  // namespace dope::power
