#include "power/breaker.hpp"

#include <algorithm>

#include "common/audit.hpp"
#include "common/expect.hpp"

namespace dope::power {

CircuitBreaker::CircuitBreaker(BreakerSpec spec) : spec_(spec) {
  DOPE_REQUIRE(spec_.rated > Watts{0.0}, "breaker rating must be positive");
  DOPE_REQUIRE(spec_.instant_trip_multiple > 1.0,
               "instant trip must exceed the rating");
  DOPE_REQUIRE(spec_.thermal_capacity > 0,
               "thermal capacity must be positive");
  DOPE_REQUIRE(spec_.cooling_rate >= 0, "cooling rate must be non-negative");
}

bool CircuitBreaker::observe(Watts load, Duration dt) {
  DOPE_REQUIRE(load >= Watts{0.0}, "load must be non-negative");
  DOPE_REQUIRE(dt > 0, "observation interval must be positive");
  if (tripped_) return false;

  const double ratio = load / spec_.rated;
  if (ratio >= spec_.instant_trip_multiple) {
    tripped_ = true;
    ++trips_;
    return true;
  }
  const double seconds = to_seconds(dt);
  if (ratio > 1.0) {
    heat_ += (ratio * ratio - 1.0) * seconds;
    if (heat_ >= spec_.thermal_capacity) {
      tripped_ = true;
      ++trips_;
      return true;
    }
  } else {
    heat_ = std::max(0.0, heat_ - spec_.cooling_rate * seconds);
  }
  if constexpr (audit::kEnabled) {
    audit::check_non_negative(nullptr, -1, "breaker.heat", heat_);
  }
  return false;
}

void CircuitBreaker::reset() {
  tripped_ = false;
  heat_ = 0.0;
}

}  // namespace dope::power
