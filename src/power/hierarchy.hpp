// Power-delivery hierarchy: facility feed -> rack PDUs -> servers.
//
// Fig. 2a's infrastructure is a tree, and oversubscription is practised
// at *every* level: each rack PDU is rated below the sum of its servers'
// nameplates, and the facility feed below the sum of the PDU ratings.
// That matters for DOPE because a flood concentrated on one rack can
// violate that rack's PDU while the facility total still looks healthy —
// a blind cluster-total power manager never notices.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace dope::power {

/// One rack-level power distribution unit.
struct PduSpec {
  std::string name;
  /// Continuous rating of this PDU (watts).
  Watts rating{0.0};
  /// Indices of the servers fed by this PDU.
  std::vector<std::size_t> servers;
};

/// A two-level delivery tree over a flat server list.
struct PowerTopology {
  /// Facility feed rating (watts).
  Watts facility_rating{0.0};
  std::vector<PduSpec> pdus;

  /// Builds a uniform topology: `num_servers` split into racks of
  /// `per_rack`, each PDU rated at `rack_oversubscription` x the rack's
  /// aggregate nameplate, the feed at `facility_oversubscription` x the
  /// cluster's aggregate nameplate. The last rack may be smaller.
  static PowerTopology uniform(std::size_t num_servers, std::size_t per_rack,
                               Watts server_nameplate,
                               double rack_oversubscription,
                               double facility_oversubscription);

  /// Checks structural sanity: every server in exactly one PDU, indices
  /// within [0, num_servers). Throws on violation.
  void validate(std::size_t num_servers) const;

  /// PDU index feeding a server; throws if the server is unassigned.
  std::size_t pdu_of(std::size_t server) const;
};

/// Load evaluation of one tree level.
struct LevelLoad {
  std::string name;
  Watts load{0.0};
  Watts rating{0.0};
  bool violated() const { return load > rating + Watts{1e-9}; }
  Watts headroom() const { return rating - load; }
};

/// Full-tree load snapshot.
struct HierarchyLoad {
  LevelLoad facility;
  std::vector<LevelLoad> pdus;

  /// Number of violated levels (facility counts as one).
  std::size_t violations() const;
  /// True when some PDU is violated while the facility is not — the
  /// "hidden" rack-local emergency a flat manager misses.
  bool rack_only_violation() const;
};

/// Evaluates per-server powers against a topology.
HierarchyLoad evaluate_hierarchy(const PowerTopology& topology,
                                 const std::vector<Watts>& server_power);

}  // namespace dope::power
