#include "power/hierarchy.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace dope::power {

PowerTopology PowerTopology::uniform(std::size_t num_servers,
                                     std::size_t per_rack,
                                     Watts server_nameplate,
                                     double rack_oversubscription,
                                     double facility_oversubscription) {
  DOPE_REQUIRE(num_servers > 0, "need at least one server");
  DOPE_REQUIRE(per_rack > 0, "rack size must be positive");
  DOPE_REQUIRE(server_nameplate > Watts{0.0}, "nameplate must be positive");
  DOPE_REQUIRE(
      rack_oversubscription > 0 && rack_oversubscription <= 1.0,
      "rack oversubscription must be in (0, 1]");
  DOPE_REQUIRE(
      facility_oversubscription > 0 && facility_oversubscription <= 1.0,
      "facility oversubscription must be in (0, 1]");

  PowerTopology topology;
  topology.facility_rating = facility_oversubscription *
                             server_nameplate *
                             static_cast<double>(num_servers);
  for (std::size_t base = 0; base < num_servers; base += per_rack) {
    PduSpec pdu;
    pdu.name = "rack-" + std::to_string(topology.pdus.size());
    const std::size_t end = std::min(base + per_rack, num_servers);
    for (std::size_t i = base; i < end; ++i) pdu.servers.push_back(i);
    pdu.rating = rack_oversubscription * server_nameplate *
                 static_cast<double>(pdu.servers.size());
    topology.pdus.push_back(std::move(pdu));
  }
  return topology;
}

void PowerTopology::validate(std::size_t num_servers) const {
  DOPE_REQUIRE(facility_rating > Watts{0.0},
               "facility rating must be positive");
  DOPE_REQUIRE(!pdus.empty(), "topology needs at least one PDU");
  std::vector<bool> seen(num_servers, false);
  for (const auto& pdu : pdus) {
    DOPE_REQUIRE(pdu.rating > Watts{0.0}, "PDU rating must be positive");
    DOPE_REQUIRE(!pdu.servers.empty(), "PDU feeds no servers");
    for (const std::size_t s : pdu.servers) {
      DOPE_REQUIRE(s < num_servers, "PDU server index out of range");
      DOPE_REQUIRE(!seen[s], "server fed by two PDUs");
      seen[s] = true;
    }
  }
  for (std::size_t s = 0; s < num_servers; ++s) {
    DOPE_REQUIRE(seen[s], "server not fed by any PDU");
  }
}

std::size_t PowerTopology::pdu_of(std::size_t server) const {
  for (std::size_t p = 0; p < pdus.size(); ++p) {
    for (const std::size_t s : pdus[p].servers) {
      if (s == server) return p;
    }
  }
  DOPE_REQUIRE(false, "server not assigned to a PDU");
  return 0;  // unreachable
}

std::size_t HierarchyLoad::violations() const {
  std::size_t n = facility.violated() ? 1 : 0;
  for (const auto& pdu : pdus) {
    if (pdu.violated()) ++n;
  }
  return n;
}

bool HierarchyLoad::rack_only_violation() const {
  if (facility.violated()) return false;
  for (const auto& pdu : pdus) {
    if (pdu.violated()) return true;
  }
  return false;
}

HierarchyLoad evaluate_hierarchy(const PowerTopology& topology,
                                 const std::vector<Watts>& server_power) {
  topology.validate(server_power.size());
  HierarchyLoad load;
  load.facility.name = "facility";
  load.facility.rating = topology.facility_rating;
  for (const auto& pdu : topology.pdus) {
    LevelLoad level;
    level.name = pdu.name;
    level.rating = pdu.rating;
    for (const std::size_t s : pdu.servers) {
      level.load += server_power[s];
    }
    load.facility.load += level.load;
    load.pdus.push_back(std::move(level));
  }
  return load;
}

}  // namespace dope::power
