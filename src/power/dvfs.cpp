#include "power/dvfs.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace dope::power {

DvfsLadder DvfsLadder::make(GHz min_ghz, GHz max_ghz, GHz step_ghz) {
  DOPE_REQUIRE(min_ghz > GHz{0.0} && max_ghz >= min_ghz &&
                   step_ghz > GHz{0.0},
               "invalid ladder parameters");
  std::vector<GHz> freqs;
  // Walk in integer steps to avoid floating-point drift in the ladder.
  const auto steps =
      static_cast<std::size_t>(std::llround((max_ghz - min_ghz) / step_ghz));
  freqs.reserve(steps + 1);
  for (std::size_t i = 0; i <= steps; ++i) {
    // Snap to 1 kHz to keep points like "2.4" exact despite binary
    // floating-point accumulation (1.2 + 12*0.1 != 2.4 exactly).
    const GHz f = min_ghz + step_ghz * static_cast<double>(i);
    freqs.push_back(GHz{std::round(f.value() * 1e6) / 1e6});
  }
  return DvfsLadder(std::move(freqs));
}

DvfsLadder::DvfsLadder(std::vector<GHz> freqs) : freqs_(std::move(freqs)) {
  DOPE_REQUIRE(!freqs_.empty(), "ladder must have at least one frequency");
  DOPE_REQUIRE(std::is_sorted(freqs_.begin(), freqs_.end()),
               "ladder frequencies must ascend");
  DOPE_REQUIRE(freqs_.front() > GHz{0.0}, "frequencies must be positive");
}

GHz DvfsLadder::frequency(DvfsLevel level) const {
  DOPE_REQUIRE(level < freqs_.size(), "DVFS level out of range");
  return freqs_[level];
}

DvfsLevel DvfsLadder::level_for(GHz f) const {
  if (f <= freqs_.front()) return 0;
  if (f >= freqs_.back()) return freqs_.size() - 1;
  // upper_bound gives the first frequency > f; the level before it is the
  // highest one not exceeding f.
  const auto it = std::upper_bound(freqs_.begin(), freqs_.end(), f);
  return static_cast<DvfsLevel>(it - freqs_.begin()) - 1;
}

DvfsLevel DvfsLadder::clamped(std::ptrdiff_t level) const {
  if (level < 0) return 0;
  const auto max = static_cast<std::ptrdiff_t>(freqs_.size() - 1);
  return static_cast<DvfsLevel>(std::min(level, max));
}

}  // namespace dope::power
