#include "power/power_model.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"

namespace dope::power {

Watts active_power(const RequestPowerProfile& profile, double rel) {
  DOPE_REQUIRE(rel > 0.0 && rel <= 1.0, "relative frequency out of range");
  const double cubic = rel * rel * rel;
  return profile.p0 * (profile.freq_sensitivity * cubic +
                       (1.0 - profile.freq_sensitivity));
}

ServerPowerModel::ServerPowerModel(ServerPowerSpec spec, DvfsLadder ladder)
    : spec_(spec), ladder_(std::move(ladder)) {
  DOPE_REQUIRE(spec_.nameplate > Watts{0.0}, "nameplate must be positive");
  DOPE_REQUIRE(spec_.idle_base >= Watts{0.0} && spec_.idle_dyn >= Watts{0.0},
               "idle power terms must be non-negative");
  DOPE_REQUIRE(spec_.cores > 0, "server needs at least one core");
}

Watts ServerPowerModel::idle_power(DvfsLevel level) const {
  const double rel = ladder_.relative(level);
  return spec_.idle_base + spec_.idle_dyn * rel * rel * rel;
}

Watts ServerPowerModel::request_power(const RequestPowerProfile& profile,
                                      DvfsLevel level) const {
  return active_power(profile, ladder_.relative(level));
}

Watts ServerPowerModel::clamp(Watts p) const {
  return std::min(p, spec_.nameplate);
}

Watts ServerPowerModel::saturated_power(const RequestPowerProfile& profile,
                                        DvfsLevel level) const {
  return clamp(idle_power(level) +
               static_cast<double>(spec_.cores) *
                   request_power(profile, level));
}

}  // namespace dope::power
