// Branch-circuit breaker with an inverse-time (thermal) trip curve.
//
// This is the physical failure the whole paper is about avoiding: Fig. 1
// ranks cyber-attack among the top root causes of *unplanned outages*,
// because a sustained draw above a feed's rating eventually trips its
// protection and takes every downstream server dark.
//
// The model mirrors real molded-case breakers:
//   - a *magnetic* (instantaneous) trip at a large multiple of the rating;
//   - a *thermal* trip that integrates overload heat: while the load P
//     exceeds the rating R, heat accumulates at ((P/R)² − 1) per second
//     (the classic I²t characteristic); below the rating the element
//     cools linearly. The breaker trips when accumulated heat reaches its
//     thermal capacity, so a 25% overload takes ~4× longer to trip than a
//     50% one — exactly the window oversubscribed data centers gamble on.
#pragma once

#include "common/units.hpp"

namespace dope::power {

/// Breaker electrical/thermal parameters.
struct BreakerSpec {
  /// Continuous current rating expressed in watts of load.
  Watts rated{0.0};
  /// Instantaneous (magnetic) trip at rated * this multiple.
  double instant_trip_multiple = 2.0;
  /// Overload-heat capacity: seconds of ((P/R)² − 1) == 1 overload
  /// (i.e. ~41% overshoot sustained for this long trips it).
  double thermal_capacity = 30.0;
  /// Heat shed per second while under the rating.
  double cooling_rate = 0.1;
};

/// Stateful breaker; feed it the observed load each management slot.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerSpec spec);

  const BreakerSpec& spec() const { return spec_; }

  /// Integrates `load` over `dt`; returns true if this observation
  /// tripped the breaker (already-tripped breakers return false).
  bool observe(Watts load, Duration dt);

  bool tripped() const { return tripped_; }

  /// Accumulated overload heat in [0, thermal_capacity].
  double heat() const { return heat_; }

  /// Number of trips since construction.
  unsigned trips() const { return trips_; }

  /// Manual reset after the fault is cleared; heat starts from zero.
  void reset();

 private:
  BreakerSpec spec_;
  double heat_ = 0.0;
  bool tripped_ = false;
  unsigned trips_ = 0;
};

}  // namespace dope::power
