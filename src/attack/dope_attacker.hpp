// The adaptive DOPE attacker (paper Fig. 12).
//
// The adversary controls a botnet of agents, each looking like a normal
// client. It only sees what any Internet client sees: whether its requests
// get answered and how long they take. The control loop per epoch:
//
//   1. establish a baseline response time at a harmless probing rate;
//   2. ramp the aggregate rate multiplicatively;
//   3. if requests start being dropped at the edge (firewall bite), back
//      off below the detected ceiling — stealth dominates;
//   4. once observed latency degrades past a target multiple of baseline
//      (evidence the victim is throttling, i.e. a power emergency), hold.
//
// The attacker never reads simulator internals (power, budgets, schemes);
// its feedback is its own requests' outcomes, delivered through the same
// record stream the metrics use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"

namespace dope::obs {
class Gauge;
class Hub;
}  // namespace dope::obs

namespace dope::attack {

/// Attacker tuning.
struct DopeAttackerConfig {
  /// Traffic blend to flood with (a heavy single URL for classic DOPE).
  workload::Mixture mixture;
  double initial_rate_rps = 10.0;
  double max_rate_rps = 4000.0;
  /// Multiplicative ramp per epoch while undetected and un-effective.
  double ramp_factor = 1.4;
  /// Multiplicative backoff after detection.
  double backoff_factor = 0.5;
  /// Decision epoch.
  Duration epoch = 5 * kSecond;
  /// Number of bot agents the rate is spread over.
  unsigned num_agents = 64;
  workload::SourceId source_base = 1'000'000;
  /// Fraction of an epoch's requests lost at the edge that counts as
  /// "detected".
  double block_tolerance = 0.02;
  /// Observed-latency multiple over baseline that counts as an effective
  /// power emergency.
  double latency_target = 3.0;
  /// Epochs spent establishing the latency baseline before ramping.
  unsigned probe_epochs = 2;
  std::uint64_t seed = 99;
};

/// Controller phases (exported for Fig. 12's convergence bench).
enum class AttackPhase { kProbing, kRamping, kHolding, kBackoff };

std::string phase_name(AttackPhase phase);

/// One controller decision, for post-run analysis.
struct AttackDecision {
  Time at = 0;
  AttackPhase phase = AttackPhase::kProbing;
  double rate_rps = 0.0;
  double observed_block_fraction = 0.0;
  double observed_latency_ratio = 0.0;
};

/// Adaptive DOPE attack controller driving a TrafficGenerator.
class DopeAttacker {
 public:
  DopeAttacker(sim::Engine& engine, const workload::Catalog& catalog,
               DopeAttackerConfig config, workload::RequestSink edge);
  ~DopeAttacker();

  DopeAttacker(const DopeAttacker&) = delete;
  DopeAttacker& operator=(const DopeAttacker&) = delete;

  /// Record listener filtering for this attacker's own requests; register
  /// with `Cluster::add_record_listener`.
  workload::RecordSink feedback_sink();

  double current_rate() const { return generator_.rate(); }
  AttackPhase phase() const { return phase_; }
  const std::vector<AttackDecision>& decisions() const { return decisions_; }
  const workload::TrafficGenerator& generator() const { return generator_; }
  /// True once the controller believes it has induced a power emergency.
  bool emergency_achieved() const { return phase_ == AttackPhase::kHolding; }

  void stop();

 private:
  void on_epoch();
  void trace_phase(AttackPhase from, double rate, double block_fraction,
                   double latency_ratio);
  bool mine(const workload::RequestRecord& record) const;

  sim::Engine& engine_;
  DopeAttackerConfig config_;
  workload::TrafficGenerator generator_;
  sim::PeriodicHandle epoch_task_;

  AttackPhase phase_ = AttackPhase::kProbing;
  unsigned epochs_seen_ = 0;
  double baseline_latency_ms_ = 0.0;
  double baseline_accum_ms_ = 0.0;
  std::uint64_t baseline_count_ = 0;
  /// Rate at which detection last occurred; the attacker stays below it.
  double detected_ceiling_rps_ = 0.0;

  // Per-epoch observation window.
  std::uint64_t epoch_completed_ = 0;
  std::uint64_t epoch_lost_edge_ = 0;
  double epoch_latency_sum_ms_ = 0.0;

  std::vector<AttackDecision> decisions_;

  obs::Hub* hub_ = nullptr;
  obs::Gauge* obs_rate_ = nullptr;
};

}  // namespace dope::attack
