#include "attack/dope_attacker.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"
#include "obs/hub.hpp"

namespace dope::attack {

namespace {

workload::GeneratorConfig generator_config(const DopeAttackerConfig& config) {
  workload::GeneratorConfig gen;
  gen.name = "dope-attacker";
  gen.mixture = config.mixture;
  gen.rate_rps = config.initial_rate_rps;
  gen.num_sources = config.num_agents;
  gen.source_base = config.source_base;
  gen.ground_truth_attack = true;
  gen.seed = config.seed;
  return gen;
}

}  // namespace

std::string phase_name(AttackPhase phase) {
  switch (phase) {
    case AttackPhase::kProbing: return "probing";
    case AttackPhase::kRamping: return "ramping";
    case AttackPhase::kHolding: return "holding";
    case AttackPhase::kBackoff: return "backoff";
  }
  return "?";
}

DopeAttacker::DopeAttacker(sim::Engine& engine,
                           const workload::Catalog& catalog,
                           DopeAttackerConfig config,
                           workload::RequestSink edge)
    : engine_(engine),
      config_(std::move(config)),
      generator_(engine, catalog, generator_config(config_), std::move(edge)) {
  DOPE_REQUIRE(!config_.mixture.empty(), "attacker needs a mixture");
  DOPE_REQUIRE(config_.initial_rate_rps > 0, "initial rate must be positive");
  DOPE_REQUIRE(config_.max_rate_rps >= config_.initial_rate_rps,
               "max rate below initial rate");
  DOPE_REQUIRE(config_.ramp_factor > 1.0, "ramp factor must exceed 1");
  DOPE_REQUIRE(config_.backoff_factor > 0.0 && config_.backoff_factor < 1.0,
               "backoff factor must be in (0, 1)");
  DOPE_REQUIRE(config_.epoch > 0, "epoch must be positive");
  hub_ = engine_.obs();
  if (hub_ != nullptr) {
    obs_rate_ = &hub_->registry().gauge("attack.rate_rps");
  }
  epoch_task_ = engine_.every(config_.epoch, [this] { on_epoch(); });
}

DopeAttacker::~DopeAttacker() { stop(); }

void DopeAttacker::stop() {
  epoch_task_.stop();
  generator_.stop();
}

bool DopeAttacker::mine(const workload::RequestRecord& record) const {
  const auto src = record.request.source;
  return src >= config_.source_base &&
         src < config_.source_base + config_.num_agents;
}

workload::RecordSink DopeAttacker::feedback_sink() {
  return [this](const workload::RequestRecord& record) {
    if (!mine(record)) return;
    switch (record.outcome) {
      case workload::RequestOutcome::kCompleted:
        ++epoch_completed_;
        epoch_latency_sum_ms_ += to_millis(record.latency);
        break;
      case workload::RequestOutcome::kBlockedByFirewall:
      case workload::RequestOutcome::kDroppedByLimit:
      case workload::RequestOutcome::kDroppedNetwork:
        // From the Internet these all look the same: no answer at the
        // edge — possible detection, so they feed the backoff signal.
        ++epoch_lost_edge_;
        break;
      case workload::RequestOutcome::kRejectedQueueFull:
      case workload::RequestOutcome::kTimedOut:
      case workload::RequestOutcome::kFailedOutage:
        // Server-side losses: evidence of overload, not detection. They
        // also mean the victim is hurting, so treat them as "slow".
        break;
    }
  };
}

void DopeAttacker::on_epoch() {
  ++epochs_seen_;
  const std::uint64_t observed = epoch_completed_ + epoch_lost_edge_;
  const double block_fraction =
      observed == 0 ? 0.0
                    : static_cast<double>(epoch_lost_edge_) /
                          static_cast<double>(observed);
  const double mean_latency_ms =
      epoch_completed_ == 0
          ? 0.0
          : epoch_latency_sum_ms_ / static_cast<double>(epoch_completed_);

  double latency_ratio = 0.0;
  if (baseline_latency_ms_ > 0.0 && mean_latency_ms > 0.0) {
    latency_ratio = mean_latency_ms / baseline_latency_ms_;
  }

  double rate = generator_.rate();
  const AttackPhase phase_before = phase_;
  switch (phase_) {
    case AttackPhase::kProbing:
      baseline_accum_ms_ += epoch_latency_sum_ms_;
      baseline_count_ += epoch_completed_;
      if (epochs_seen_ >= config_.probe_epochs && baseline_count_ > 0) {
        baseline_latency_ms_ =
            baseline_accum_ms_ / static_cast<double>(baseline_count_);
        phase_ = AttackPhase::kRamping;
      }
      break;

    case AttackPhase::kRamping:
      if (block_fraction > config_.block_tolerance) {
        detected_ceiling_rps_ = rate;
        rate = std::max(config_.initial_rate_rps,
                        rate * config_.backoff_factor);
        phase_ = AttackPhase::kBackoff;
      } else if (latency_ratio >= config_.latency_target) {
        phase_ = AttackPhase::kHolding;
      } else {
        rate = std::min(config_.max_rate_rps, rate * config_.ramp_factor);
        if (detected_ceiling_rps_ > 0.0) {
          // Creep toward, but stay safely under, the discovered ceiling.
          rate = std::min(rate, 0.8 * detected_ceiling_rps_);
        }
      }
      break;

    case AttackPhase::kHolding:
      if (block_fraction > config_.block_tolerance) {
        detected_ceiling_rps_ = rate;
        rate = std::max(config_.initial_rate_rps,
                        rate * config_.backoff_factor);
        phase_ = AttackPhase::kBackoff;
      } else if (latency_ratio > 0.0 &&
                 latency_ratio < config_.latency_target * 0.5) {
        // Victim recovered (defense adapted); resume the hunt.
        phase_ = AttackPhase::kRamping;
      }
      break;

    case AttackPhase::kBackoff:
      if (block_fraction <= config_.block_tolerance) {
        phase_ = AttackPhase::kRamping;
      } else {
        rate = std::max(config_.initial_rate_rps,
                        rate * config_.backoff_factor);
      }
      break;
  }

  generator_.set_rate(rate);
  decisions_.push_back({engine_.now(), phase_, rate, block_fraction,
                        latency_ratio});
  if (obs_rate_ != nullptr) {
    obs_rate_->set(rate);
    // Same signal the scenario runner feeds from its per-slot probe, so
    // an "attack-rate" watchdog rule fires for scripted and adaptive
    // attacks alike.
    hub_->watchdog().observe("attack.rate_rps", engine_.now(), rate);
  }
  if (phase_ != phase_before) {
    trace_phase(phase_before, rate, block_fraction, latency_ratio);
  }

  epoch_completed_ = 0;
  epoch_lost_edge_ = 0;
  epoch_latency_sum_ms_ = 0.0;
}

void DopeAttacker::trace_phase(AttackPhase from, double rate,
                               double block_fraction,
                               double latency_ratio) {
  if (hub_ == nullptr) return;
  obs::TraceEvent e;
  e.t = engine_.now();
  e.type = obs::EventType::kAttackPhase;
  e.source = "attacker";
  e.num.emplace_back("rate_rps", rate);
  e.num.emplace_back("block_fraction", block_fraction);
  e.num.emplace_back("latency_ratio", latency_ratio);
  e.str.emplace_back("from", phase_name(from));
  e.str.emplace_back("to", phase_name(phase_));
  hub_->event(std::move(e));
}

}  // namespace dope::attack
