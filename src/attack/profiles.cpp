#include "attack/profiles.hpp"

#include "common/expect.hpp"

namespace dope::attack {

using workload::Catalog;
using workload::Mixture;

std::string attack_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kHttpFlood: return "HTTP-Flood";
    case AttackKind::kDnsFlood: return "DNS-Flood";
    case AttackKind::kSynFlood: return "SYN-Flood";
    case AttackKind::kUdpFlood: return "UDP-Flood";
    case AttackKind::kSlowloris: return "Slowloris";
    case AttackKind::kDopeCollaFilt: return "DOPE(Colla-Filt)";
    case AttackKind::kDopeKMeans: return "DOPE(K-means)";
    case AttackKind::kDopeWordCount: return "DOPE(Word-Count)";
  }
  return "?";
}

Mixture attack_mixture(AttackKind kind) {
  switch (kind) {
    case AttackKind::kHttpFlood:
      // GET flood over the whole EC surface, hitting heavy URLs often.
      return Mixture({Catalog::kCollaFilt, Catalog::kKMeans,
                      Catalog::kWordCount, Catalog::kTextCont},
                     {0.3, 0.3, 0.2, 0.2});
    case AttackKind::kDnsFlood:
      return Mixture::single(Catalog::kDnsQuery);
    case AttackKind::kSynFlood:
      return Mixture::single(Catalog::kSynPacket);
    case AttackKind::kUdpFlood:
      return Mixture::single(Catalog::kUdpPacket);
    case AttackKind::kSlowloris:
      // A handful of light requests held open; negligible compute.
      return Mixture::single(Catalog::kTextCont);
    case AttackKind::kDopeCollaFilt:
      return Mixture::single(Catalog::kCollaFilt);
    case AttackKind::kDopeKMeans:
      return Mixture::single(Catalog::kKMeans);
    case AttackKind::kDopeWordCount:
      return Mixture::single(Catalog::kWordCount);
  }
  return Mixture::single(Catalog::kTextCont);
}

workload::GeneratorConfig make_attack_config(AttackKind kind, double rate_rps,
                                             unsigned num_agents,
                                             workload::SourceId source_base,
                                             std::uint64_t seed) {
  DOPE_REQUIRE(rate_rps >= 0, "attack rate must be non-negative");
  DOPE_REQUIRE(num_agents >= 1, "need at least one agent");
  workload::GeneratorConfig config;
  config.name = attack_name(kind);
  config.mixture = attack_mixture(kind);
  config.rate_rps = rate_rps;
  config.num_sources = num_agents;
  config.source_base = source_base;
  config.ground_truth_attack = true;
  config.seed = seed;
  return config;
}

}  // namespace dope::attack
