// Canned cyber-attack traffic profiles (paper Section 3.1, Fig. 3).
//
// Each kind maps to a request mixture plus a characteristic rate regime.
// Application-layer floods (HTTP, DNS) make the victim *task-intensive*
// and draw high power; network/volume floods (SYN, UDP) move many packets
// that individually cost almost nothing, so their power footprint is low —
// the asymmetry the whole paper is built on.
#pragma once

#include <string>

#include "workload/catalog.hpp"
#include "workload/generator.hpp"

namespace dope::attack {

/// The attack taxonomy exercised in Fig. 3.
enum class AttackKind {
  kHttpFlood,   ///< app-layer GET flood on the EC service (high power)
  kDnsFlood,    ///< app-layer DNS query flood (medium power)
  kSynFlood,    ///< TCP SYN volume flood (low power)
  kUdpFlood,    ///< UDP volume flood (low power)
  kSlowloris,   ///< few slow connections holding workers (low power)
  /// Selective single-URL DOPE floods (Section 4):
  kDopeCollaFilt,
  kDopeKMeans,
  kDopeWordCount,
};

/// All kinds, in Fig. 3 presentation order.
inline constexpr AttackKind kAllAttackKinds[] = {
    AttackKind::kHttpFlood,     AttackKind::kDnsFlood,
    AttackKind::kSynFlood,      AttackKind::kUdpFlood,
    AttackKind::kSlowloris,     AttackKind::kDopeCollaFilt,
    AttackKind::kDopeKMeans,    AttackKind::kDopeWordCount,
};

std::string attack_name(AttackKind kind);

/// The request mixture a given attack sends.
workload::Mixture attack_mixture(AttackKind kind);

/// Builds a generator config for `kind` at `rate_rps` spread over
/// `num_agents` bot sources starting at `source_base`.
workload::GeneratorConfig make_attack_config(AttackKind kind, double rate_rps,
                                             unsigned num_agents,
                                             workload::SourceId source_base,
                                             std::uint64_t seed);

}  // namespace dope::attack
